// Package analysis is rtmw-vet: a small, dependency-free static-analysis
// framework plus the analyzers that machine-check invariants this repo
// otherwise documents only in comments and pins only at runtime — the
// ascending shard-lock order of sched.ShardedLedger, the allocation-free
// hot paths guarded by benchguard, byte-identical record/replay that map
// iteration order silently breaks, and fields that must be accessed through
// sync/atomic at every site or not at all.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf, analysistest-style fixtures) but is
// built only on the standard library: packages are enumerated with
// `go list -deps -export -json` and type-checked with go/types, importing
// dependencies from the compiler's export data. See DESIGN.md "Static
// invariant enforcement".
//
// Annotation grammar (all directives are ordinary //-comments, no space
// after the slashes, mirroring go:build style):
//
//	//rtmw:noalloc
//	    On a function or method declaration: the body must be free of
//	    constructs that allocate on every call (closures, fmt, interface
//	    boxing, unbounded append, make/new, &composite, string concat).
//	//rtmw:deterministic
//	    On a function: map iteration without a sort is flagged inside it.
//	//rtmw:deterministic file
//	    Before the package clause: the whole file is determinism-critical.
//	//rtmw:lockrank <rank> [indexed]
//	    On a mutex-typed struct field: participates in the lock-order
//	    lattice. Lower ranks must be acquired first; `indexed` marks a
//	    striped/sharded lock whose instances may only be acquired in
//	    ascending index order.
//	//rtmw:ignore <analyzer> <reason>
//	    On the flagged line or the line directly above: suppress one
//	    analyzer's diagnostics for that line. The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rtmw:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Directive is one parsed //rtmw: comment.
type Directive struct {
	Pos  token.Pos
	Kind string   // "noalloc", "deterministic", "lockrank", "ignore"
	Args []string // whitespace-split arguments after the kind
}

// directivePrefix introduces every rtmw annotation.
const directivePrefix = "//rtmw:"

// parseDirectives extracts every //rtmw: directive from a comment group.
func parseDirectives(g *ast.CommentGroup) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		// A `//` inside the directive text ends it (it introduces trailing
		// prose, e.g. the `// want` annotations in analyzer fixtures).
		if cut := strings.Index(rest, "//"); cut >= 0 {
			rest = rest[:cut]
		}
		fields := strings.Fields(rest)
		d := Directive{Pos: c.Pos()}
		if len(fields) > 0 {
			d.Kind = fields[0]
			d.Args = fields[1:]
		}
		out = append(out, d)
	}
	return out
}

// FuncDirective reports whether fn's doc comment carries the named
// directive kind (e.g. "noalloc").
func FuncDirective(fn *ast.FuncDecl, kind string) bool {
	for _, d := range parseDirectives(fn.Doc) {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// FileDirective reports whether any comment group positioned before the
// package clause carries `//rtmw:<kind> file`.
func FileDirective(f *ast.File, kind string) bool {
	for _, g := range f.Comments {
		if g.End() > f.Package {
			break
		}
		for _, d := range parseDirectives(g) {
			if d.Kind == kind && len(d.Args) == 1 && d.Args[0] == "file" {
				return true
			}
		}
	}
	return false
}

// ignoreKey addresses one suppressible (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreIndex maps the lines each //rtmw:ignore directive covers (its own
// line and the next line, so the directive works both as a trailing comment
// and as a standalone line above the finding).
type ignoreIndex struct {
	cells map[ignoreKey]*ignoreCell
}

type ignoreCell struct {
	pos  token.Position
	used bool
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{cells: make(map[ignoreKey]*ignoreCell)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, d := range parseDirectives(g) {
				if d.Kind != "ignore" || len(d.Args) < 2 {
					continue // grammar violations are reported by Directives
				}
				pos := fset.Position(d.Pos)
				cell := &ignoreCell{pos: pos}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					idx.cells[ignoreKey{pos.Filename, line, d.Args[0]}] = cell
				}
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by an //rtmw:ignore directive,
// marking the directive used.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	cell, ok := idx.cells[ignoreKey{d.Position.Filename, d.Position.Line, d.Analyzer}]
	if ok {
		cell.used = true
	}
	return ok
}

// RunPackage applies every analyzer to one loaded package and returns the
// surviving diagnostics (those not covered by //rtmw:ignore), sorted by
// position. Directive-grammar findings from the Directives analyzer are not
// suppressible.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	kept := raw[:0]
	for _, d := range raw {
		if d.Analyzer != Directives.Name && idx.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

// Suite is every rtmw-vet analyzer, in reporting order. It is populated in
// init so that Directives.Run may call Lookup without an initialization
// cycle.
var Suite []*Analyzer

func init() {
	Suite = []*Analyzer{
		Directives,
		LockOrder,
		NoAlloc,
		MapOrder,
		AtomicField,
		SentinelWrap,
	}
}

// Lookup returns the suite analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range Suite {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Directives validates the grammar and placement of every //rtmw: comment,
// so a typo in an annotation fails the build instead of silently disabling
// a check.
var Directives = &Analyzer{
	Name: "directive",
	Doc: "check that every //rtmw: annotation parses: known kind, required " +
		"arguments (ignore needs an analyzer name and a reason, lockrank an " +
		"integer rank), and analyzer names that actually exist",
	Run: runDirectives,
}

func runDirectives(pass *Pass) error {
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			for _, d := range parseDirectives(g) {
				checkDirective(pass, d)
			}
		}
	}
	return nil
}

func checkDirective(pass *Pass, d Directive) {
	switch d.Kind {
	case "noalloc":
		if len(d.Args) != 0 {
			pass.Reportf(d.Pos, "//rtmw:noalloc takes no arguments")
		}
	case "deterministic":
		if len(d.Args) > 1 || (len(d.Args) == 1 && d.Args[0] != "file") {
			pass.Reportf(d.Pos, "//rtmw:deterministic takes no argument or the single word `file`")
		}
	case "lockrank":
		if len(d.Args) < 1 || len(d.Args) > 2 {
			pass.Reportf(d.Pos, "//rtmw:lockrank wants `<rank> [indexed]`")
			return
		}
		if _, err := strconv.Atoi(d.Args[0]); err != nil {
			pass.Reportf(d.Pos, "//rtmw:lockrank rank %q is not an integer", d.Args[0])
		}
		if len(d.Args) == 2 && d.Args[1] != "indexed" {
			pass.Reportf(d.Pos, "//rtmw:lockrank second argument must be `indexed`, got %q", d.Args[1])
		}
	case "ignore":
		if len(d.Args) < 2 {
			pass.Reportf(d.Pos, "//rtmw:ignore wants `<analyzer> <reason>`: the reason is mandatory")
			return
		}
		if Lookup(d.Args[0]) == nil {
			pass.Reportf(d.Pos, "//rtmw:ignore names unknown analyzer %q", d.Args[0])
		}
	default:
		pass.Reportf(d.Pos, "unknown rtmw directive %q", d.Kind)
	}
}
