package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// LockOrder enforces the sharded-ledger locking lattice documented at the
// top of internal/sched/sharded.go: mutex fields annotated
// `//rtmw:lockrank <rank> [indexed]` may only be acquired in ascending rank
// order, same-rank locks of different classes never nest, and an `indexed`
// class (the per-shard mutexes) may hold several instances at once only
// when they are taken by one call site whose index provably ascends — a
// `for i := 0; i < n; i++` loop, a `for i := range s` loop, or the
// lowest-set-bit mask walk via bits.TrailingZeros64.
//
// The check is intraprocedural and flow-sensitive over each function body:
// branches fork the held-lock set and merge by intersection, `defer
// x.Unlock()` keeps the lock held to the end of the function, and a lock
// acquired inside a loop and still held at the end of the body must carry
// an ascending-index proof (it will be joined by the next iteration's
// acquisition).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "enforce the annotated lock-rank lattice: ascending rank only, " +
		"no same-rank nesting across classes, indexed (sharded) locks " +
		"acquired in ascending index order",
	Run: runLockOrder,
}

// lockClass is the annotation on one mutex field.
type lockClass struct {
	name    string // "ledgerShard.mu", for diagnostics
	rank    int
	indexed bool
}

func runLockOrder(pass *Pass) error {
	classes := collectLockClasses(pass)
	if len(classes) == 0 {
		return nil
	}
	w := &lockWalker{pass: pass, classes: classes}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w.walkFunc(fn.Body)
		}
	}
	return nil
}

// collectLockClasses finds every struct field annotated //rtmw:lockrank.
func collectLockClasses(pass *Pass) map[*types.Var]lockClass {
	classes := make(map[*types.Var]lockClass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				cls, ok := lockClassOf(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					cls.name = name.Name
					if owner := structFieldOwner(pass, obj); owner != "" {
						cls.name = owner + "." + name.Name
					}
					classes[obj] = cls
				}
			}
			return true
		})
	}
	return classes
}

func lockClassOf(field *ast.Field) (lockClass, bool) {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		for _, d := range parseDirectives(g) {
			if d.Kind != "lockrank" || len(d.Args) < 1 {
				continue
			}
			rank, err := strconv.Atoi(d.Args[0])
			if err != nil {
				continue // Directives reports the grammar error
			}
			return lockClass{rank: rank, indexed: len(d.Args) == 2 && d.Args[1] == "indexed"}, true
		}
	}
	return lockClass{}, false
}

// structFieldOwner names the struct type a field belongs to, when it has one.
func structFieldOwner(pass *Pass, field *types.Var) string {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok && st.Pos() <= field.Pos() && field.Pos() <= st.End() {
					return ts.Name.Name
				}
			}
		}
	}
	return ""
}

// heldLock is one annotated mutex the walker believes is currently held.
type heldLock struct {
	field *types.Var
	class lockClass
	site  *ast.CallExpr
	loop  ast.Stmt // innermost enclosing loop at acquisition, nil outside loops
	asc   bool     // acquisition carried an ascending-index proof for loop
}

// loopCtx is one entry of the enclosing-loop stack.
type loopCtx struct {
	stmt     ast.Stmt
	ascIdent types.Object // loop variable proven to ascend, or nil
}

type lockWalker struct {
	pass    *Pass
	classes map[*types.Var]lockClass
	loops   []loopCtx
}

func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	w.loops = w.loops[:0]
	w.walkStmt(body, nil)
}

// walkStmt interprets one statement, returning the held set afterwards and
// whether control definitely leaves the enclosing sequence.
func (w *lockWalker) walkStmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.ExprStmt:
		return w.scanExpr(s.X, held), false
	case *ast.IfStmt:
		held, _ = w.walkStmt(s.Init, held)
		held = w.scanExpr(s.Cond, held)
		thenHeld, thenTerm := w.walkStmt(s.Body, held)
		elseHeld, elseTerm := w.walkStmt(s.Else, held)
		return mergeBranches([][]heldLock{thenHeld, elseHeld}, []bool{thenTerm, elseTerm})
	case *ast.ForStmt:
		held, _ = w.walkStmt(s.Init, held)
		held = w.scanExpr(s.Cond, held)
		w.loops = append(w.loops, loopCtx{stmt: s, ascIdent: ascendingForVar(w.pass, s)})
		out, term := w.walkStmt(s.Body, held)
		held, _ = w.walkStmt(s.Post, out)
		w.loops = w.loops[:len(w.loops)-1]
		if !term {
			w.checkLoopCarried(s, held)
		}
		return held, false
	case *ast.RangeStmt:
		held = w.scanExpr(s.X, held)
		w.loops = append(w.loops, loopCtx{stmt: s, ascIdent: ascendingRangeVar(w.pass, s)})
		out, term := w.walkStmt(s.Body, held)
		w.loops = w.loops[:len(w.loops)-1]
		if !term {
			w.checkLoopCarried(s, out)
		}
		return out, false
	case *ast.SwitchStmt:
		held, _ = w.walkStmt(s.Init, held)
		held = w.scanExpr(s.Tag, held)
		return w.walkCases(s.Body, held)
	case *ast.TypeSwitchStmt:
		held, _ = w.walkStmt(s.Init, held)
		held, _ = w.walkStmt(s.Assign, held)
		return w.walkCases(s.Body, held)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scanExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.DeferStmt:
		// defer x.Unlock() keeps x held to the end of the function; locks
		// manipulated inside a deferred closure are out of scope.
		return held, false
	case *ast.GoStmt:
		// The spawned goroutine's locking is its own flow.
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanExpr(e, held)
		}
		return held, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		return held, false
	default:
		return held, false
	}
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkCases(body *ast.BlockStmt, held []heldLock) ([]heldLock, bool) {
	var outs [][]heldLock
	var terms []bool
	sawDefault := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
			sawDefault = sawDefault || c.List == nil
		case *ast.CommClause:
			list = c.Body
			sawDefault = sawDefault || c.Comm == nil
		}
		out, term := w.walkStmts(list, held)
		outs = append(outs, out)
		terms = append(terms, term)
	}
	if !sawDefault {
		// Fall-through when no case matches.
		outs = append(outs, held)
		terms = append(terms, false)
	}
	return mergeBranches(outs, terms)
}

// mergeBranches intersects the held sets of the branches that can reach the
// join point (by acquisition site identity).
func mergeBranches(outs [][]heldLock, terms []bool) ([]heldLock, bool) {
	var live [][]heldLock
	for i, out := range outs {
		if !terms[i] {
			live = append(live, out)
		}
	}
	if len(live) == 0 {
		return nil, true
	}
	merged := live[0]
	for _, other := range live[1:] {
		var next []heldLock
		for _, h := range merged {
			for _, o := range other {
				if h.site == o.site {
					next = append(next, h)
					break
				}
			}
		}
		merged = next
	}
	return merged, false
}

// scanExpr applies every Lock/Unlock call inside e, in source order,
// skipping closure bodies (analyzed as independent flows would be, but a
// closure's lock discipline depends on where it runs; rtmw-vet checks only
// straight-line code).
func (w *lockWalker) scanExpr(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, ok := w.lockFieldOf(sel.X)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			held = w.acquire(call, sel.X, field, held)
		case "Unlock", "RUnlock":
			held = release(field, held)
		}
		return true
	})
	return held
}

// lockFieldOf resolves a mutex expression (`sh.mu`, `sl.shards[i].mu`,
// `sl.crossMu`) to its annotated field, if any.
func (w *lockWalker) lockFieldOf(e ast.Expr) (*types.Var, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, ok := w.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		if s, found := w.pass.Info.Selections[sel]; found {
			obj, ok = s.Obj().(*types.Var)
		}
		if !ok {
			return nil, false
		}
	}
	_, annotated := w.classes[obj]
	return obj, annotated
}

func (w *lockWalker) acquire(call *ast.CallExpr, mutexExpr ast.Expr, field *types.Var, held []heldLock) []heldLock {
	cls := w.classes[field]
	for _, h := range held {
		switch {
		case cls.rank < h.class.rank:
			w.pass.Reportf(call.Pos(),
				"acquires %s (rank %d) while holding %s (rank %d): ledger locks nest in ascending rank only",
				cls.name, cls.rank, h.class.name, h.class.rank)
		case cls.rank == h.class.rank && h.field != field:
			w.pass.Reportf(call.Pos(),
				"acquires %s while holding %s: both rank %d, no nesting order is defined between them",
				cls.name, h.class.name, cls.rank)
		case h.field == field && !cls.indexed:
			w.pass.Reportf(call.Pos(), "re-acquires %s while already holding it (self-deadlock)", cls.name)
		case h.field == field && cls.indexed:
			w.pass.Reportf(call.Pos(),
				"acquires a second %s instance at a different call site: ascending index order cannot be proven; take all instances from one ascending loop",
				cls.name)
		}
	}
	var loop ast.Stmt
	var ascIdent types.Object
	if len(w.loops) > 0 {
		top := w.loops[len(w.loops)-1]
		loop, ascIdent = top.stmt, top.ascIdent
	}
	return append(held, heldLock{
		field: field,
		class: cls,
		site:  call,
		loop:  loop,
		asc:   loop != nil && ascendingIndexProof(w.pass, mutexExpr, ascIdent),
	})
}

func release(field *types.Var, held []heldLock) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].field == field {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held // unlocking a caller-held lock: out of intraprocedural scope
}

// checkLoopCarried flags locks acquired inside the loop body and still held
// when it ends: the next iteration acquires another instance on top. For an
// indexed class that is legal exactly when the site carries an
// ascending-index proof; for anything else it is a self-deadlock.
func (w *lockWalker) checkLoopCarried(loop ast.Stmt, held []heldLock) {
	for _, h := range held {
		if h.loop != loop {
			continue
		}
		if h.class.indexed {
			if !h.asc {
				w.pass.Reportf(h.site.Pos(),
					"%s is acquired inside a loop and held across iterations without an ascending-index proof (want `for i := 0; i < n; i++`, `for i := range s`, or a bits.TrailingZeros64 mask walk)",
					h.class.name)
			}
		} else {
			w.pass.Reportf(h.site.Pos(),
				"%s is acquired inside a loop and still held at the end of the body: the next iteration self-deadlocks",
				h.class.name)
		}
	}
}

// ascendingForVar recognizes `for i := lo; i < hi; i++` (or <=) and returns
// i's object.
func ascendingForVar(pass *Pass, s *ast.ForStmt) types.Object {
	post, ok := s.Post.(*ast.IncDecStmt)
	if !ok || post.Tok.String() != "++" {
		return nil
	}
	ident, ok := post.X.(*ast.Ident)
	if !ok {
		return nil
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op.String() != "<" && cond.Op.String() != "<=") {
		return nil
	}
	left, ok := cond.X.(*ast.Ident)
	if !ok || left.Name != ident.Name {
		return nil
	}
	if obj := pass.Info.Uses[ident]; obj != nil {
		return obj
	}
	return pass.Info.Defs[ident]
}

// ascendingRangeVar returns the key variable of a range over a slice,
// array, or integer (whose indices ascend); map and channel ranges prove
// nothing.
func ascendingRangeVar(pass *Pass, s *ast.RangeStmt) types.Object {
	key, ok := s.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	t := pass.Info.TypeOf(s.X)
	if t == nil {
		return nil
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Basic:
	case *types.Pointer: // *[N]T
	default:
		return nil
	}
	if obj := pass.Info.Defs[key]; obj != nil {
		return obj
	}
	return pass.Info.Uses[key]
}

// ascendingIndexProof reports whether the mutex expression indexes by the
// loop's ascending variable or by a lowest-set-bit mask walk.
func ascendingIndexProof(pass *Pass, mutexExpr ast.Expr, ascIdent types.Object) bool {
	proven := false
	ast.Inspect(mutexExpr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if ident, ok := n.Index.(*ast.Ident); ok && ascIdent != nil && pass.Info.Uses[ident] == ascIdent {
				proven = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "bits" &&
					(sel.Sel.Name == "TrailingZeros64" || sel.Sel.Name == "TrailingZeros32" || sel.Sel.Name == "TrailingZeros") {
					proven = true
				}
			}
		}
		return !proven
	})
	return proven
}
