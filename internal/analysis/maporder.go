package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder polices the determinism-critical paths (scenario
// compile/replay, configengine delta emission, golden-metrics rendering):
// inside a function annotated `//rtmw:deterministic`, or anywhere in a file
// whose header carries `//rtmw:deterministic file`, ranging over a map is
// flagged — Go randomizes map iteration order, which silently breaks
// byte-identical record/replay and golden outputs.
//
// One idiom is recognized as safe without an annotation: a range whose body
// is exactly one statement collecting the keys (or values) into a slice,
// `for k := range m { keys = append(keys, k) }` — the canonical
// collect-then-sort shape (the sort itself is the author's obligation; the
// golden tests pin the result). Any other map range needs either that
// rewrite or an explicit `//rtmw:ignore maporder <reason>` arguing order
// insensitivity (pure accumulation, invariant checking, ...).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration on determinism-critical paths " +
		"(//rtmw:deterministic scopes) unless it is the collect-keys-" +
		"then-sort idiom or carries a justified //rtmw:ignore",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		wholeFile := FileDirective(f, "deterministic")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if wholeFile || FuncDirective(fn, "deterministic") {
				checkMapOrder(pass, fn.Body)
			}
		}
	}
	return nil
}

func checkMapOrder(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isKeyCollection(pass, rng) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"map iteration on a determinism-critical path: collect keys and sort, or justify with //rtmw:ignore maporder <reason>")
		return true
	})
}

// isKeyCollection recognizes `for k[, v] := range m { s = append(s, k) }`
// (or appending v, or both in one call): the order-sensitive part is
// deferred to the sort that must follow.
func isKeyCollection(pass *Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Tok.String() != "=" {
		return false
	}
	call, ok := appendCall(pass, assign.Rhs[0])
	if !ok || len(call.Args) < 2 {
		return false
	}
	if exprText(assign.Lhs[0]) != exprText(sliceBase(call.Args[0])) {
		return false
	}
	// Every appended element must be the loop's key or value variable (or a
	// field/index of one): no order-dependent computation inside the loop.
	loopVars := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if ident, ok := v.(*ast.Ident); ok && ident.Name != "_" {
			if obj := pass.Info.Defs[ident]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return false
	}
	for _, arg := range call.Args[1:] {
		root := arg
		for {
			switch t := root.(type) {
			case *ast.SelectorExpr:
				root = t.X
				continue
			case *ast.IndexExpr:
				root = t.X
				continue
			case *ast.ParenExpr:
				root = t.X
				continue
			}
			break
		}
		ident, ok := root.(*ast.Ident)
		if !ok || !loopVars[pass.Info.Uses[ident]] {
			return false
		}
	}
	return true
}
