package orb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrConnectionClosed reports that the pooled connection died before the
// reply arrived; the caller may retry, which dials a fresh connection.
var ErrConnectionClosed = errors.New("orb: connection closed")

// RemoteError is an exception reply raised by a remote servant.
type RemoteError struct {
	// Message is the servant's error text.
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return "orb: remote exception: " + e.Message }

// clientConn is one pooled outbound connection with request/reply
// correlation: the readLoop demultiplexes replies to waiting invokers by
// request id. All writes go through the connection's frame sender (the
// batched writer, or the legacy locked writer in reference mode).
type clientConn struct {
	conn   net.Conn
	writer frameSender

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan message
	dead    bool
}

// newClientConn wraps an established connection. The owner must attach a
// frame sender and start readLoop in a goroutine it tracks.
func newClientConn(conn net.Conn) *clientConn {
	return &clientConn{
		conn:    conn,
		waiting: make(map[uint64]chan message),
	}
}

// broken reports whether the connection has failed.
func (c *clientConn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// close tears the connection down and fails all waiters.
func (c *clientConn) close() {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	waiters := c.waiting
	c.waiting = make(map[uint64]chan message)
	c.mu.Unlock()
	c.writer.close()
	c.conn.Close()
	for _, ch := range waiters {
		close(ch)
	}
}

// readLoop demultiplexes replies until the connection fails.
func (c *clientConn) readLoop() {
	for {
		m, err := readMessage(c.conn)
		if err != nil {
			c.close()
			return
		}
		if m.kind != msgReply {
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiting[m.id]
		delete(c.waiting, m.id)
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// send frames and transmits one message. Transport failures tear the
// connection down; validation errors and overloads leave it healthy.
func (c *clientConn) send(m message, block bool) error {
	if c.broken() {
		return ErrConnectionClosed
	}
	if err := c.writer.send(m, block); err != nil {
		if errors.Is(err, ErrConnectionClosed) {
			c.close()
		}
		return err
	}
	return nil
}

// invoke performs a two-way call.
func (c *clientConn) invoke(ctx context.Context, key, op string, arg []byte) ([]byte, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, ErrConnectionClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan message, 1)
	c.waiting[id] = ch
	c.mu.Unlock()

	err := c.send(message{kind: msgRequest, id: id, key: key, op: op, body: arg}, true)
	if err != nil {
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case m, ok := <-ch:
		if !ok {
			return nil, ErrConnectionClosed
		}
		if m.status == statusException {
			return nil, &RemoteError{Message: string(m.body)}
		}
		return m.body, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("orb: invoke %s.%s: %w", key, op, ctx.Err())
	}
}

// oneWay sends a request without reply correlation. block selects the
// backpressure policy on a full send queue: wait for space, or fail fast
// with ErrOverloaded.
func (c *clientConn) oneWay(key, op string, arg []byte, block bool) error {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return c.send(message{kind: msgOneWay, id: id, key: key, op: op, body: arg}, block)
}
