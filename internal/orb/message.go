package orb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message kinds.
const (
	msgRequest byte = iota + 1
	msgReply
	msgOneWay
)

// Reply statuses.
const (
	statusOK byte = iota
	statusException
)

// maxFrame bounds a single message to guard against corrupt length prefixes.
const maxFrame = 16 << 20

// message is one framed protocol unit. Requests carry key/op/body; replies
// carry status/body.
type message struct {
	kind   byte
	id     uint64
	key    string
	op     string
	status byte
	body   []byte
}

// appendFrame validates m and appends its framed encoding to dst:
//
//	uint32 length | byte kind | uint64 id | payload
//
// where the request payload is uint16 keyLen | key | uint16 opLen | op |
// body, and the reply payload is byte status | body. Frames are
// self-contained, so a batched flush of n frames is byte-identical to n
// sequential writeMessage calls.
func appendFrame(dst []byte, m message) ([]byte, error) {
	var payload int
	switch m.kind {
	case msgRequest, msgOneWay:
		payload = 2 + len(m.key) + 2 + len(m.op) + len(m.body)
	case msgReply:
		payload = 1 + len(m.body)
	default:
		return dst, fmt.Errorf("orb: unknown message kind %d", m.kind)
	}
	total := 1 + 8 + payload
	if total > maxFrame {
		return dst, fmt.Errorf("orb: frame of %d bytes exceeds limit", total)
	}
	start := len(dst)
	dst = append(dst, make([]byte, 4+total)...)
	buf := dst[start:]
	binary.BigEndian.PutUint32(buf[0:], uint32(total))
	buf[4] = m.kind
	binary.BigEndian.PutUint64(buf[5:], m.id)
	off := 13
	switch m.kind {
	case msgRequest, msgOneWay:
		if len(m.key) > 0xFFFF || len(m.op) > 0xFFFF {
			return dst[:start], errors.New("orb: key or operation name too long")
		}
		binary.BigEndian.PutUint16(buf[off:], uint16(len(m.key)))
		off += 2
		off += copy(buf[off:], m.key)
		binary.BigEndian.PutUint16(buf[off:], uint16(len(m.op)))
		off += 2
		off += copy(buf[off:], m.op)
		copy(buf[off:], m.body)
	case msgReply:
		buf[off] = m.status
		copy(buf[off+1:], m.body)
	}
	return dst, nil
}

// writeMessage frames and writes m in one call: the pre-batching reference
// path, kept for the batched writer's differential tests.
func writeMessage(w io.Writer, m message) error {
	buf, err := appendFrame(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readMessage reads one framed message.
func readMessage(r io.Reader) (message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return message{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 9 || total > maxFrame {
		return message{}, fmt.Errorf("orb: invalid frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return message{}, err
	}
	m := message{kind: buf[0], id: binary.BigEndian.Uint64(buf[1:9])}
	payload := buf[9:]
	switch m.kind {
	case msgRequest, msgOneWay:
		key, rest, err := readLVString(payload)
		if err != nil {
			return message{}, err
		}
		op, rest, err := readLVString(rest)
		if err != nil {
			return message{}, err
		}
		m.key, m.op, m.body = key, op, rest
	case msgReply:
		if len(payload) < 1 {
			return message{}, errors.New("orb: truncated reply")
		}
		m.status = payload[0]
		m.body = payload[1:]
	default:
		return message{}, fmt.Errorf("orb: unknown message kind %d", m.kind)
	}
	return m, nil
}

// readLVString decodes a uint16 length-prefixed string.
func readLVString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("orb: truncated string header")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, errors.New("orb: truncated string body")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
