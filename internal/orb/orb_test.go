package orb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newPair returns a listening server ORB and a client ORB, cleaned up with
// the test.
func newPair(t *testing.T) (server *ORB, addr string, client *ORB) {
	t.Helper()
	server = New("server")
	a, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client = New("client")
	t.Cleanup(func() {
		client.Shutdown()
		server.Shutdown()
	})
	return server, a.String(), client
}

func TestInvokeEcho(t *testing.T) {
	server, addr, client := newPair(t)
	server.RegisterServant("echo", func(op string, arg []byte) ([]byte, error) {
		return append([]byte(op+":"), arg...), nil
	})
	got, err := client.Invoke(context.Background(), addr, "echo", "say", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "say:hello" {
		t.Errorf("Invoke = %q, want %q", got, "say:hello")
	}
}

func TestInvokeRemoteException(t *testing.T) {
	server, addr, client := newPair(t)
	server.RegisterServant("bad", func(op string, arg []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := client.Invoke(context.Background(), addr, "bad", "op", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want RemoteError", err)
	}
	if re.Message != "boom" {
		t.Errorf("RemoteError.Message = %q, want boom", re.Message)
	}
}

func TestInvokeUnknownServant(t *testing.T) {
	_, addr, client := newPair(t)
	_, err := client.Invoke(context.Background(), addr, "ghost", "op", nil)
	if err == nil || !strings.Contains(err.Error(), "no servant") {
		t.Errorf("error = %v, want no-servant exception", err)
	}
}

func TestOneWayDelivery(t *testing.T) {
	server, addr, client := newPair(t)
	var calls atomic.Int64
	done := make(chan struct{}, 1)
	server.RegisterServant("sink", func(op string, arg []byte) ([]byte, error) {
		calls.Add(1)
		select {
		case done <- struct{}{}:
		default:
		}
		return nil, nil
	})
	if err := client.InvokeOneWay(addr, "sink", "push", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("one-way request never dispatched")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1", calls.Load())
	}
}

func TestConcurrentInvokes(t *testing.T) {
	server, addr, client := newPair(t)
	server.RegisterServant("id", func(op string, arg []byte) ([]byte, error) {
		return arg, nil
	})
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			got, err := client.Invoke(context.Background(), addr, "id", "op", []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("got %q, want %q (reply misrouted)", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestInvokeTimeout(t *testing.T) {
	server, addr, client := newPair(t)
	block := make(chan struct{})
	server.RegisterServant("slow", func(op string, arg []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := client.Invoke(ctx, addr, "slow", "op", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
}

func TestInvokeAfterServerRestartFails(t *testing.T) {
	server, addr, client := newPair(t)
	server.RegisterServant("echo", func(op string, arg []byte) ([]byte, error) { return arg, nil })
	if _, err := client.Invoke(context.Background(), addr, "echo", "op", []byte("a")); err != nil {
		t.Fatal(err)
	}
	server.Shutdown()
	// The pooled connection is dead; the invoke must fail (either on send or
	// on closed-reply), not hang.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := client.Invoke(ctx, addr, "echo", "op", []byte("b")); err == nil {
		t.Error("invoke against shut-down server succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	client := New("client")
	defer client.Shutdown()
	_, err := client.Invoke(context.Background(), "127.0.0.1:1", "x", "y", nil)
	if err == nil {
		t.Error("invoke to dead address succeeded")
	}
}

func TestListenTwiceFails(t *testing.T) {
	server, _, _ := newPair(t)
	if _, err := server.Listen("127.0.0.1:0"); err == nil {
		t.Error("second Listen succeeded")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	o := New("o")
	if _, err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	o.Shutdown()
	o.Shutdown() // must not panic or deadlock
	if _, err := o.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Shutdown succeeded")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	tests := []message{
		{kind: msgRequest, id: 7, key: "obj", op: "do", body: []byte("payload")},
		{kind: msgOneWay, id: 9, key: "k", op: "o", body: nil},
		{kind: msgReply, id: 7, status: statusOK, body: []byte("result")},
		{kind: msgReply, id: 8, status: statusException, body: []byte("err")},
		{kind: msgRequest, id: 1, key: "", op: "", body: []byte{}},
	}
	for _, m := range tests {
		var buf bytes.Buffer
		if err := writeMessage(&buf, m); err != nil {
			t.Fatalf("write %+v: %v", m, err)
		}
		got, err := readMessage(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", m, err)
		}
		if got.kind != m.kind || got.id != m.id || got.key != m.key ||
			got.op != m.op || got.status != m.status || string(got.body) != string(m.body) {
			t.Errorf("round trip = %+v, want %+v", got, m)
		}
	}
}

func TestMessageCorruption(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readMessage(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	// Unknown kind.
	var b2 bytes.Buffer
	if err := writeMessage(&b2, message{kind: 0x7F}); err == nil {
		t.Error("unknown kind written")
	}
	// Truncated body.
	var b3 bytes.Buffer
	if err := writeMessage(&b3, message{kind: msgRequest, id: 1, key: "k", op: "o", body: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	raw := b3.Bytes()
	half := bytes.NewReader(raw[:len(raw)-2])
	if _, err := readMessage(half); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRemoteErrorFormat(t *testing.T) {
	err := &RemoteError{Message: "x"}
	if got := err.Error(); got != "orb: remote exception: x" {
		t.Errorf("Error() = %q", got)
	}
}
