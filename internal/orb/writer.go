package orb

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
)

// ErrOverloaded reports that a bounded send queue was full when a
// non-blocking send was attempted. It is the ORB's explicit backpressure
// signal: callers on best-effort paths (event pushes) may drop and count,
// instead of blocking behind a slow peer.
var ErrOverloaded = errors.New("orb: send queue overloaded")

// Batched-writer defaults, overridable with WithSendQueueDepth and
// WithWriteBatch.
const (
	// DefaultSendQueueDepth bounds the per-connection send queue.
	DefaultSendQueueDepth = 1024
	// DefaultWriteBatch caps the frames coalesced into one flush.
	DefaultWriteBatch = 128
)

// maxPooledFrame bounds the capacity of buffers returned to the frame pool,
// so one oversized payload does not pin a large allocation forever.
const maxPooledFrame = 64 << 10

// framePool recycles frame buffers across connections and messages.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// getFrame fetches a pooled buffer, logically empty.
func getFrame() *[]byte {
	f := framePool.Get().(*[]byte)
	*f = (*f)[:0]
	return f
}

// putFrame recycles a buffer unless it grew past the pooling cap.
func putFrame(f *[]byte) {
	if cap(*f) > maxPooledFrame {
		return
	}
	framePool.Put(f)
}

// TransportStats is a snapshot of an ORB's batched-writer counters, across
// all of its connections (inbound reply writers and outbound client
// writers).
type TransportStats struct {
	// FramesSent counts frames handed to the kernel.
	FramesSent int64
	// Flushes counts write syscalls; FramesSent/Flushes is the achieved
	// batching factor.
	Flushes int64
	// BytesSent counts payload bytes written.
	BytesSent int64
	// Overloads counts sends refused with ErrOverloaded.
	Overloads int64
}

// transportStats is the atomic accumulator behind TransportStats.
type transportStats struct {
	frames    atomic.Int64
	flushes   atomic.Int64
	bytes     atomic.Int64
	overloads atomic.Int64
}

func (s *transportStats) snapshot() TransportStats {
	return TransportStats{
		FramesSent: s.frames.Load(),
		Flushes:    s.flushes.Load(),
		BytesSent:  s.bytes.Load(),
		Overloads:  s.overloads.Load(),
	}
}

// frameSender abstracts the two write paths: the batched connWriter and the
// pre-batching legacyWriter reference implementation.
type frameSender interface {
	// send frames and transmits m. block selects the policy when the send
	// queue is full: wait for space (true) or fail with ErrOverloaded
	// (false). Frame-validation errors leave the connection healthy;
	// transport failures are (or wrap) ErrConnectionClosed.
	send(m message, block bool) error
	// close releases the sender's resources. It does not close the
	// underlying connection unless the sender owns a failed one.
	close()
}

// connWriter owns every write on one connection: senders enqueue framed
// messages onto a bounded queue, and a single goroutine drains it,
// coalescing whatever is queued (up to the batch cap) into one
// net.Buffers flush — a writev on TCP — so n concurrent senders cost one
// syscall, not n. Frame buffers are pool-recycled after each flush.
type connWriter struct {
	conn     net.Conn
	queue    chan *[]byte
	done     chan struct{}
	maxBatch int
	stats    *transportStats
	once     sync.Once
}

// newConnWriter starts the writer goroutine, tracked by wg.
func newConnWriter(conn net.Conn, depth, maxBatch int, stats *transportStats, wg *sync.WaitGroup) *connWriter {
	if depth <= 0 {
		depth = DefaultSendQueueDepth
	}
	if maxBatch <= 0 {
		maxBatch = DefaultWriteBatch
	}
	w := &connWriter{
		conn:     conn,
		queue:    make(chan *[]byte, depth),
		done:     make(chan struct{}),
		maxBatch: maxBatch,
		stats:    stats,
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.loop()
	}()
	return w
}

// send implements frameSender.
func (w *connWriter) send(m message, block bool) error {
	f := getFrame()
	enc, err := appendFrame(*f, m)
	if err != nil {
		putFrame(f)
		return err
	}
	*f = enc
	// Check for death first: a closed done and a non-full queue are both
	// ready, and the blocking select below would pick between them at
	// random — enqueueing onto a writer that already drained reports a
	// phantom success.
	select {
	case <-w.done:
		putFrame(f)
		return ErrConnectionClosed
	default:
	}
	if block {
		select {
		case w.queue <- f:
			return nil
		case <-w.done:
			putFrame(f)
			return ErrConnectionClosed
		}
	}
	select {
	case w.queue <- f:
		return nil
	default:
		w.stats.overloads.Add(1)
		putFrame(f)
		return ErrOverloaded
	}
}

// close stops the writer goroutine; queued frames are discarded.
func (w *connWriter) close() {
	w.once.Do(func() { close(w.done) })
}

// loop is the writer goroutine: take one frame (blocking), opportunistically
// coalesce everything else already queued, flush once.
func (w *connWriter) loop() {
	frames := make([]*[]byte, 0, w.maxBatch)
	backing := make([][]byte, 0, w.maxBatch)
	for {
		frames = frames[:0]
		select {
		case f := <-w.queue:
			frames = append(frames, f)
		case <-w.done:
			w.drain()
			return
		}
	coalesce:
		for len(frames) < w.maxBatch {
			select {
			case f := <-w.queue:
				frames = append(frames, f)
			default:
				break coalesce
			}
		}
		backing = backing[:0]
		var total int64
		for _, f := range frames {
			backing = append(backing, *f)
			total += int64(len(*f))
		}
		// One vectored write for the whole batch. net.Buffers consumes the
		// header copy, not `backing` itself.
		bufs := net.Buffers(backing)
		_, err := bufs.WriteTo(w.conn)
		for _, f := range frames {
			putFrame(f)
		}
		if err != nil {
			// The connection is gone: close it so the peer's and our read
			// loops observe the failure, then stop.
			w.conn.Close()
			w.close()
			w.drain()
			return
		}
		w.stats.frames.Add(int64(len(frames)))
		w.stats.flushes.Add(1)
		w.stats.bytes.Add(total)
	}
}

// drain recycles whatever was queued when the writer stopped.
func (w *connWriter) drain() {
	for {
		select {
		case f := <-w.queue:
			putFrame(f)
		default:
			return
		}
	}
}

// legacyWriter is the pre-batching reference path: one locked Write per
// message. It is kept selectable (WithLegacyWriter) so differential tests
// and benchmarks can compare the batched plane against the original
// single-message behavior.
type legacyWriter struct {
	mu    sync.Mutex
	conn  net.Conn
	stats *transportStats
}

func (l *legacyWriter) send(m message, _ bool) error {
	frame, err := appendFrame(nil, m)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.conn.Write(frame); err != nil {
		l.conn.Close()
		return errors.Join(ErrConnectionClosed, err)
	}
	l.stats.frames.Add(1)
	l.stats.flushes.Add(1)
	l.stats.bytes.Add(int64(len(frame)))
	return nil
}

func (l *legacyWriter) close() {}
