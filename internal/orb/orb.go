// Package orb is a compact object request broker: the RPC substrate the live
// middleware binding runs on, substituting for the TAO real-time CORBA ORB
// the paper built on. It provides request/reply and one-way invocations on
// named servants over persistent TCP connections with connection reuse.
//
// The wire protocol is a simple length-prefixed framing (see message.go);
// argument bodies are opaque byte slices, encoded by callers (the live
// components use encoding/gob). The broker preserves the properties the
// paper's services rely on: low per-call overhead, in-order delivery per
// connection, and concurrent dispatch of independent requests.
package orb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler is a servant's dispatch entry point: it receives the operation
// name and the marshaled argument, and returns the marshaled result.
// Returning an error sends an exception reply to the caller.
type Handler func(op string, arg []byte) ([]byte, error)

// Option configures an ORB.
type Option func(*ORB)

// WithInvokeTimeout sets the default deadline applied to Invoke calls that
// have no earlier context deadline. The default is five seconds.
func WithInvokeTimeout(d time.Duration) Option {
	return func(o *ORB) { o.invokeTimeout = d }
}

// WithSendQueueDepth bounds each connection's send queue (default
// DefaultSendQueueDepth). A full queue blocks two-way senders and fails
// non-blocking one-way senders with ErrOverloaded.
func WithSendQueueDepth(n int) Option {
	return func(o *ORB) { o.sendDepth = n }
}

// WithWriteBatch caps how many frames one flush coalesces (default
// DefaultWriteBatch).
func WithWriteBatch(n int) Option {
	return func(o *ORB) { o.writeBatch = n }
}

// WithLegacyWriter selects the pre-batching write path — one locked write
// syscall per message, no send queue. Kept as the reference behavior for
// differential tests and the event-plane benchmark baseline.
func WithLegacyWriter() Option {
	return func(o *ORB) { o.legacyWrites = true }
}

// ORB is one node's object request broker: a server endpoint hosting
// servants plus a client-side connection pool. The zero value is not usable;
// call New.
type ORB struct {
	name          string
	invokeTimeout time.Duration
	sendDepth     int
	writeBatch    int
	legacyWrites  bool
	stats         transportStats

	mu       sync.Mutex
	servants map[string]Handler
	listener net.Listener
	clients  map[string]*clientConn
	inbound  map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// New returns an ORB named for diagnostics.
func New(name string, opts ...Option) *ORB {
	o := &ORB{
		name:          name,
		invokeTimeout: 5 * time.Second,
		sendDepth:     DefaultSendQueueDepth,
		writeBatch:    DefaultWriteBatch,
		servants:      make(map[string]Handler),
		clients:       make(map[string]*clientConn),
		inbound:       make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// TransportStats snapshots the write-path counters across all of the ORB's
// connections: frames, flush syscalls (their ratio is the achieved batching
// factor), bytes, and refused overload sends.
func (o *ORB) TransportStats() TransportStats { return o.stats.snapshot() }

// newSender builds the configured write path for one connection.
func (o *ORB) newSender(conn net.Conn) frameSender {
	if o.legacyWrites {
		return &legacyWriter{conn: conn, stats: &o.stats}
	}
	return newConnWriter(conn, o.sendDepth, o.writeBatch, &o.stats, &o.wg)
}

// Name returns the ORB's diagnostic name.
func (o *ORB) Name() string { return o.name }

// RegisterServant binds a handler to an object key. Registering an existing
// key replaces the previous servant.
func (o *ORB) RegisterServant(key string, h Handler) {
	if h == nil {
		panic("orb: nil handler")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.servants[key] = h
}

// lookup finds a servant.
func (o *ORB) lookup(key string) (Handler, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.servants[key]
	return h, ok
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. It may be called at most once.
func (o *ORB) Listen(addr string) (net.Addr, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil, errors.New("orb: already shut down")
	}
	if o.listener != nil {
		return nil, errors.New("orb: already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb %s: listen: %w", o.name, err)
	}
	o.listener = ln
	o.wg.Add(1)
	go o.acceptLoop(ln)
	return ln.Addr(), nil
}

// Addr returns the bound listen address, or nil before Listen.
func (o *ORB) Addr() net.Addr {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.listener == nil {
		return nil
	}
	return o.listener.Addr()
}

// acceptLoop serves inbound connections until the listener closes.
func (o *ORB) acceptLoop(ln net.Listener) {
	defer o.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			conn.Close()
			return
		}
		o.inbound[conn] = struct{}{}
		o.mu.Unlock()
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			defer func() {
				o.mu.Lock()
				delete(o.inbound, conn)
				o.mu.Unlock()
			}()
			o.serveConn(conn)
		}()
	}
}

// serveConn reads requests off one inbound connection and dispatches them.
// Replies go through the connection's frame sender, so concurrent handlers
// cannot interleave frames and bursts of replies coalesce into one flush.
func (o *ORB) serveConn(conn net.Conn) {
	defer conn.Close()
	sender := o.newSender(conn)
	defer sender.close()
	for {
		msg, err := readMessage(conn)
		if err != nil {
			return
		}
		switch msg.kind {
		case msgRequest, msgOneWay:
			o.wg.Add(1)
			go func(m message) {
				defer o.wg.Done()
				o.dispatch(sender, m)
			}(msg)
		default:
			// Unexpected message kind on a server connection; drop it.
		}
	}
}

// dispatch invokes the servant and, for two-way requests, writes the reply.
func (o *ORB) dispatch(sender frameSender, m message) {
	h, ok := o.lookup(m.key)
	var (
		body []byte
		err  error
	)
	if !ok {
		err = fmt.Errorf("orb %s: no servant %q", o.name, m.key)
	} else {
		body, err = h(m.op, m.body)
	}
	if m.kind == msgOneWay {
		return
	}
	reply := message{kind: msgReply, id: m.id}
	if err != nil {
		reply.status = statusException
		reply.body = []byte(err.Error())
	} else {
		reply.status = statusOK
		reply.body = body
	}
	// Replies block on a full queue (bounded by the queue depth, never
	// dropped); write errors are ignored — the peer tears the connection
	// down and retries.
	_ = sender.send(reply, true)
}

// Invoke performs a two-way invocation on the servant key at addr. The
// context bounds the call; without a deadline the ORB's invoke timeout
// applies.
func (o *ORB) Invoke(ctx context.Context, addr, key, op string, arg []byte) ([]byte, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.invokeTimeout)
		defer cancel()
	}
	cc, err := o.client(addr)
	if err != nil {
		return nil, err
	}
	return cc.invoke(ctx, key, op, arg)
}

// InvokeOneWay sends a request without waiting for a reply (the event-push
// pattern of the federated event channel). A full send queue applies
// backpressure by blocking until the writer drains or the connection dies.
func (o *ORB) InvokeOneWay(addr, key, op string, arg []byte) error {
	cc, err := o.client(addr)
	if err != nil {
		return err
	}
	return cc.oneWay(key, op, arg, true)
}

// TryInvokeOneWay is InvokeOneWay with fail-fast overload semantics: when
// the connection's bounded send queue is full it returns ErrOverloaded
// immediately instead of blocking, so best-effort paths can shed load
// explicitly.
func (o *ORB) TryInvokeOneWay(addr, key, op string, arg []byte) error {
	cc, err := o.client(addr)
	if err != nil {
		return err
	}
	return cc.oneWay(key, op, arg, false)
}

// client returns (dialing if necessary) the pooled connection to addr.
func (o *ORB) client(addr string) (*clientConn, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil, errors.New("orb: shut down")
	}
	cc, ok := o.clients[addr]
	if ok && !cc.broken() {
		o.mu.Unlock()
		return cc, nil
	}
	o.mu.Unlock()

	// Dial outside the lock; racing dials are reconciled below.
	nc, err := net.DialTimeout("tcp", addr, o.invokeTimeout)
	if err != nil {
		return nil, fmt.Errorf("orb %s: dial %s: %w", o.name, addr, err)
	}
	fresh := newClientConn(nc)

	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		nc.Close()
		return nil, errors.New("orb: shut down")
	}
	if cur, ok := o.clients[addr]; ok && !cur.broken() {
		nc.Close()
		return cur, nil
	}
	fresh.writer = o.newSender(nc)
	o.clients[addr] = fresh
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		fresh.readLoop()
	}()
	return fresh, nil
}

// Shutdown closes the listener and all connections and waits for every
// served request and background goroutine to finish.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		o.wg.Wait()
		return
	}
	o.closed = true
	ln := o.listener
	clients := make([]*clientConn, 0, len(o.clients))
	for _, cc := range o.clients {
		clients = append(clients, cc)
	}
	served := make([]net.Conn, 0, len(o.inbound))
	for conn := range o.inbound {
		served = append(served, conn)
	}
	o.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, cc := range clients {
		cc.close()
	}
	for _, conn := range served {
		conn.Close()
	}
	o.wg.Wait()
}
