package orb

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// TestLargePayloadRoundTrip exercises framing near megabyte scale (workload
// JSON attributes in deployment plans can be large).
func TestLargePayloadRoundTrip(t *testing.T) {
	server, addr, client := newPair(t)
	server.RegisterServant("echo", func(op string, arg []byte) ([]byte, error) { return arg, nil })
	payload := bytes.Repeat([]byte("x"), 1<<20)
	got, err := client.Invoke(context.Background(), addr, "echo", "op", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload corrupted: got %d bytes", len(got))
	}
}

// TestOversizedFrameRejected verifies the frame guard refuses messages over
// the limit instead of allocating unbounded memory.
func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	huge := message{kind: msgRequest, id: 1, key: "k", op: "o", body: make([]byte, maxFrame)}
	if err := writeMessage(&buf, huge); err == nil {
		t.Error("oversized frame written")
	}
}

// TestShutdownDuringInFlightInvokes closes the server while invocations are
// blocked in a servant: every caller must get an error promptly rather than
// hang.
func TestShutdownDuringInFlightInvokes(t *testing.T) {
	server := New("server")
	listenAddr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := listenAddr.String()
	client := New("client")
	defer client.Shutdown()

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	server.RegisterServant("slow", func(op string, arg []byte) ([]byte, error) {
		started <- struct{}{}
		<-release
		return nil, nil
	})

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := client.Invoke(ctx, addr, "slow", "op", nil)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("invocations never reached the servant")
		}
	}
	// Unblock the handlers, then shut down; callers racing the shutdown
	// must resolve either way without hanging.
	close(release)
	server.Shutdown()
	for i := 0; i < n; i++ {
		select {
		case <-errs:
			// Success or connection-closed are both acceptable outcomes.
		case <-time.After(10 * time.Second):
			t.Fatal("invocation wedged across shutdown")
		}
	}
}

// TestConcurrentOneWaysAndInvokes mixes one-way pushes and two-way calls on
// one shared connection under the race detector.
func TestConcurrentOneWaysAndInvokes(t *testing.T) {
	server, addr, client := newPair(t)
	server.RegisterServant("svc", func(op string, arg []byte) ([]byte, error) { return arg, nil })
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for i := 0; i < 32; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(context.Background(), addr, "svc", "two-way", []byte("a")); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if err := client.InvokeOneWay(addr, "svc", "one-way", []byte("b")); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReconnectAfterServerRestart verifies a fresh server on the same
// address is reachable after the pooled connection died.
func TestReconnectAfterServerRestart(t *testing.T) {
	server := New("server-1")
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server.RegisterServant("echo", func(op string, arg []byte) ([]byte, error) { return arg, nil })
	client := New("client")
	defer client.Shutdown()
	if _, err := client.Invoke(context.Background(), addr.String(), "echo", "op", []byte("1")); err != nil {
		t.Fatal(err)
	}
	server.Shutdown()

	// Restart on the same port.
	server2 := New("server-2")
	if _, err := server2.Listen(addr.String()); err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer server2.Shutdown()
	server2.RegisterServant("echo", func(op string, arg []byte) ([]byte, error) { return arg, nil })

	// The first call may fail while the pool notices the dead connection;
	// within a few attempts the client must reconnect.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := client.Invoke(context.Background(), addr.String(), "echo", "op", []byte("2")); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("client never reconnected to the restarted server")
}
