package orb

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// waitFrames polls until the stats report n frames sent or the deadline
// passes.
func waitFrames(t *testing.T, stats *transportStats, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if stats.frames.Load() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("writer flushed %d frames, want %d", stats.frames.Load(), n)
}

// TestBatchedWriterDifferential feeds a random message sequence through the
// batched writer and asserts the byte stream is identical to the
// pre-batching reference path (sequential writeMessage calls): batching must
// only coalesce syscalls, never change the wire format.
func TestBatchedWriterDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msgs := make([]message, 200)
	for i := range msgs {
		m := message{id: uint64(i)}
		switch rng.Intn(3) {
		case 0:
			m.kind = msgRequest
		case 1:
			m.kind = msgOneWay
		case 2:
			m.kind = msgReply
			m.status = byte(rng.Intn(2))
		}
		if m.kind != msgReply {
			m.key = fmt.Sprintf("key-%d", rng.Intn(10))
			m.op = fmt.Sprintf("op-%d", rng.Intn(10))
		}
		m.body = make([]byte, rng.Intn(512))
		rng.Read(m.body)
		msgs[i] = m
	}

	var want bytes.Buffer
	for _, m := range msgs {
		if err := writeMessage(&want, m); err != nil {
			t.Fatal(err)
		}
	}

	client, server := net.Pipe()
	gotCh := make(chan []byte, 1)
	go func() {
		all, _ := io.ReadAll(server)
		gotCh <- all
	}()

	var stats transportStats
	var wg sync.WaitGroup
	w := newConnWriter(client, 16, 8, &stats, &wg)
	for _, m := range msgs {
		if err := w.send(m, true); err != nil {
			t.Errorf("send %+v: %v", m, err)
		}
	}
	waitFrames(t, &stats, int64(len(msgs)))
	w.close()
	wg.Wait()
	client.Close()

	got := <-gotCh
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("batched stream (%d bytes) differs from sequential writeMessage stream (%d bytes)",
			len(got), want.Len())
	}
	if stats.flushes.Load() > stats.frames.Load() {
		t.Errorf("flushes %d > frames %d", stats.flushes.Load(), stats.frames.Load())
	}
}

// TestWriterOverloadFailFast verifies the explicit backpressure contract: a
// full bounded queue fails non-blocking sends with ErrOverloaded (and counts
// them) instead of blocking forever.
func TestWriterOverloadFailFast(t *testing.T) {
	// A pipe with no reader: the first flush blocks, so the queue fills.
	client, server := net.Pipe()

	var stats transportStats
	var wg sync.WaitGroup
	w := newConnWriter(client, 4, 1, &stats, &wg)
	defer func() {
		// Close the pipe first: the writer may be parked in the blocked
		// flush, and only a conn close unblocks it so wg.Wait can return.
		client.Close()
		server.Close()
		w.close()
		wg.Wait()
	}()

	m := message{kind: msgOneWay, id: 1, key: "k", op: "o", body: []byte("x")}
	overloads := 0
	for i := 0; i < 16; i++ {
		if err := w.send(m, false); err != nil {
			if err != ErrOverloaded {
				t.Fatalf("send error = %v, want ErrOverloaded", err)
			}
			overloads++
		}
	}
	if overloads == 0 {
		t.Error("no sends were refused on a full queue")
	}
	if stats.overloads.Load() != int64(overloads) {
		t.Errorf("overload counter = %d, want %d", stats.overloads.Load(), overloads)
	}
}

// TestWriterConcurrentIntegrity hammers one batched writer from many
// goroutines and verifies every frame arrives intact and exactly once:
// coalesced flushes must never interleave or drop frames.
func TestWriterConcurrentIntegrity(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const senders, perSender = 16, 200
	seen := make(chan uint64, senders*perSender)
	accepted := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		close(accepted)
		defer conn.Close()
		for {
			m, err := readMessage(conn)
			if err != nil {
				close(seen)
				return
			}
			seen <- m.id
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	var stats transportStats
	var wg sync.WaitGroup
	w := newConnWriter(conn, 64, 32, &stats, &wg)

	var sendWG sync.WaitGroup
	for s := 0; s < senders; s++ {
		sendWG.Add(1)
		go func(s int) {
			defer sendWG.Done()
			for i := 0; i < perSender; i++ {
				id := uint64(s*perSender + i + 1)
				m := message{kind: msgOneWay, id: id, key: "k", op: "o", body: []byte("payload")}
				if err := w.send(m, true); err != nil {
					t.Errorf("send %d: %v", id, err)
					return
				}
			}
		}(s)
	}
	sendWG.Wait()
	waitFrames(t, &stats, senders*perSender)
	w.close()
	wg.Wait()
	conn.Close()

	got := make(map[uint64]bool, senders*perSender)
	for id := range seen {
		if got[id] {
			t.Fatalf("frame id %d delivered twice", id)
		}
		got[id] = true
	}
	if len(got) != senders*perSender {
		t.Fatalf("received %d frames, want %d", len(got), senders*perSender)
	}
	if f, fl := stats.frames.Load(), stats.flushes.Load(); fl >= f {
		t.Logf("no coalescing observed (frames=%d flushes=%d)", f, fl)
	}
}
