package core

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// TraceKind labels a job lifecycle transition in a simulation trace.
type TraceKind int

// Trace event kinds.
const (
	// TraceArrived marks a job arrival at its task effector.
	TraceArrived TraceKind = iota + 1
	// TraceReleased marks an accepted job's release.
	TraceReleased
	// TraceSkipped marks a rejected (not released) job.
	TraceSkipped
	// TraceStageDone marks one subjob completion.
	TraceStageDone
	// TraceCompleted marks the last subjob's completion.
	TraceCompleted
)

// String returns the lowercase event name.
func (k TraceKind) String() string {
	switch k {
	case TraceArrived:
		return "arrived"
	case TraceReleased:
		return "released"
	case TraceSkipped:
		return "skipped"
	case TraceStageDone:
		return "stage-done"
	case TraceCompleted:
		return "completed"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one recorded lifecycle transition.
type TraceEvent struct {
	// At is the virtual time of the transition.
	At time.Duration
	// Kind is the transition type.
	Kind TraceKind
	// Ref identifies the job.
	Ref sched.JobRef
	// Stage is the subtask index for TraceStageDone (-1 otherwise).
	Stage int
	// Proc is the processor involved (-1 when not applicable).
	Proc int
}

// String formats one event for logs.
func (e TraceEvent) String() string {
	if e.Kind == TraceStageDone {
		return fmt.Sprintf("%v %s %s stage=%d proc=%d", e.At, e.Kind, e.Ref, e.Stage, e.Proc)
	}
	return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Ref)
}

// record appends to the trace when tracing is enabled.
func (s *SimSystem) record(kind TraceKind, ref sched.JobRef, stage, proc int) {
	if !s.cfg.Trace {
		return
	}
	s.trace = append(s.trace, TraceEvent{
		At:    s.eng.Now(),
		Kind:  kind,
		Ref:   ref,
		Stage: stage,
		Proc:  proc,
	})
}

// Trace returns the recorded lifecycle events (nil unless SimConfig.Trace
// was set). The returned slice is owned by the simulation; callers must not
// mutate it.
func (s *SimSystem) Trace() []TraceEvent { return s.trace }
