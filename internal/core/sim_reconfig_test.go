package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// reconfigWorkload is a mixed periodic/aperiodic two-processor workload
// busy enough that jobs are in flight at the swap instant.
func reconfigWorkload() []*sched.Task {
	return []*sched.Task{
		periodicTask("p0", 0, 30*time.Millisecond, 200*time.Millisecond, 1),
		periodicTask("p1", 1, 25*time.Millisecond, 250*time.Millisecond, 0),
		aperiodicTask("a0", 0, 15*time.Millisecond, 150*time.Millisecond, 1),
		aperiodicTask("a1", 1, 10*time.Millisecond, 120*time.Millisecond),
	}
}

// TestSimReconfigureMidRunNoJobLoss pins the tentpole guarantee: flipping
// the minimal static configuration to the fully dynamic one mid-run loses
// no admitted job — every released job completes, and every arrival is
// decided (released or skipped).
func TestSimReconfigureMidRunNoJobLoss(t *testing.T) {
	from := Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}
	to := Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyPerJob}
	sim := mustSim(t, simCfg(from, 2), reconfigWorkload())
	rep, err := sim.ScheduleReconfig(15*time.Second, to)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()

	if m.Total.Arrived == 0 || m.Total.Released == 0 {
		t.Fatalf("workload inert: %+v", m.Total)
	}
	if m.Total.Released != m.Total.Completed {
		t.Errorf("admitted jobs lost: released %d, completed %d", m.Total.Released, m.Total.Completed)
	}
	if m.Total.Arrived != m.Total.Released+m.Total.Skipped {
		t.Errorf("arrival accounting broken: arrived %d != released %d + skipped %d",
			m.Total.Arrived, m.Total.Released, m.Total.Skipped)
	}
	if got := sim.Controller().Config(); got != to {
		t.Errorf("controller config after swap = %s, want %s", got, to)
	}
	if rep.Epoch != 1 || rep.From != from || rep.To != to {
		t.Errorf("report = %+v", rep)
	}
	if rep.At < 15*time.Second {
		t.Errorf("swap at %v, before the scheduled instant", rep.At)
	}
	if rep.Quiesce <= 0 {
		t.Errorf("quiesce window = %v", rep.Quiesce)
	}
	if got := sim.ReconfigReports(); len(got) != 1 || got[0].Epoch != rep.Epoch || got[0].At != rep.At {
		t.Errorf("ReconfigReports = %+v", got)
	}
	if snap := sim.Snapshot(); snap.Epoch != 1 || snap.Config != to || snap.InFlight != 0 {
		t.Errorf("snapshot after drain = %+v", snap)
	}
}

// TestSimReconfigureFigureWorkload runs the swap over a full Figure 5
// random workload — the experiment harness's configuration — and pins zero
// job loss plus ledger invariants at scale.
func TestSimReconfigureFigureWorkload(t *testing.T) {
	tasks, err := workload.Generate(workload.Figure5Params(0))
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSim(t, SimConfig{
		Strategies: Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone},
		NumProcs:   workload.MaxProc(tasks) + 1,
		Horizon:    time.Minute,
		Seed:       7,
	}, tasks)
	if _, err := sim.ScheduleReconfig(30*time.Second, Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyPerJob}); err != nil {
		t.Fatal(err)
	}
	m := sim.Run() // Run audits ledger invariants and panics on drift.
	if m.Total.Released != m.Total.Completed {
		t.Errorf("admitted jobs lost: released %d, completed %d", m.Total.Released, m.Total.Completed)
	}
	if m.Total.Arrived != m.Total.Released+m.Total.Skipped {
		t.Errorf("arrival accounting broken: %+v", m.Total)
	}
}

// TestSimReconfigureInvalidTargetRejected pins that a contradictory target
// is refused without disturbing the scheduled run.
func TestSimReconfigureInvalidTargetRejected(t *testing.T) {
	from := Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyNone}
	sim := mustSim(t, simCfg(from, 2), reconfigWorkload())
	if _, err := sim.ScheduleReconfig(time.Second, Config{AC: StrategyPerTask, IR: StrategyPerJob, LB: StrategyNone}); err == nil {
		t.Fatal("contradictory AC-per-task/IR-per-job target accepted")
	}
	if _, err := sim.Reconfigure(Config{}); err == nil {
		t.Fatal("zero-value target accepted")
	}
	m := sim.Run()
	if got := sim.Controller().Config(); got != from {
		t.Errorf("config disturbed by rejected target: %s", got)
	}
	if len(sim.ReconfigReports()) != 0 {
		t.Errorf("rejected targets produced reports: %+v", sim.ReconfigReports())
	}
	if m.Total.Released != m.Total.Completed {
		t.Errorf("baseline run lost jobs: %+v", m.Total)
	}
}

// TestSimReconfigureStrategySchedule runs a three-phase strategy schedule
// (T_N_N → J_N_N → J_J_J) and pins epoch ordering plus zero job loss
// across both swaps.
func TestSimReconfigureStrategySchedule(t *testing.T) {
	sim := mustSim(t, simCfg(Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}, 2), reconfigWorkload())
	if _, err := sim.ScheduleReconfig(10*time.Second, Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ScheduleReconfig(20*time.Second, Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyPerJob}); err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	reports := sim.ReconfigReports()
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].Epoch != 1 || reports[1].Epoch != 2 {
		t.Errorf("epochs = %d, %d", reports[0].Epoch, reports[1].Epoch)
	}
	if reports[1].From != reports[0].To {
		t.Errorf("schedule not chained: %s -> %s then %s -> %s",
			reports[0].From, reports[0].To, reports[1].From, reports[1].To)
	}
	if m.Total.Released != m.Total.Completed {
		t.Errorf("admitted jobs lost across schedule: %+v", m.Total)
	}
}

// TestSimReconfigureIdempotentPreRun pins the synchronous pre-run path:
// with the engine idle the swap applies immediately and the report is
// complete.
func TestSimReconfigurePreRun(t *testing.T) {
	from := Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}
	to := Config{AC: StrategyPerJob, IR: StrategyPerTask, LB: StrategyNone}
	sim := mustSim(t, simCfg(from, 2), reconfigWorkload())
	rep, err := sim.Reconfigure(to)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || rep.Quiesce != 0 || rep.To != to {
		t.Errorf("pre-run report = %+v", rep)
	}
	if got := sim.Controller().Config(); got != to {
		t.Errorf("config = %s, want %s", got, to)
	}
	m := sim.Run()
	if m.Total.Released != m.Total.Completed {
		t.Errorf("run after pre-run reconfigure lost jobs: %+v", m.Total)
	}
}

// TestSimReconfigureReservationRebase pins the ledger rebase: per-task
// reservations are withdrawn when AC leaves per-task, and the released
// count lands in the report.
func TestSimReconfigureReservationRebase(t *testing.T) {
	sim := mustSim(t, simCfg(Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}, 2), reconfigWorkload())
	rep, err := sim.ScheduleReconfig(15*time.Second, Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Both periodic tasks are feasible, so both held reservations (one
	// single-stage contribution each) at the swap.
	if rep.ReservationsReleased != 2 {
		t.Errorf("ReservationsReleased = %d, want 2", rep.ReservationsReleased)
	}
	if got := sim.Controller().Stats.ReconfigReleased; got != 2 {
		t.Errorf("controller ReconfigReleased = %d, want 2", got)
	}
}

// TestSimSubmitInjectsArrival pins the Binding Submit path: extra arrivals
// join the workload, return a typed Admission, and are decided like
// generated ones. Failures are typed sentinels, not message strings.
func TestSimSubmitInjectsArrival(t *testing.T) {
	sim := mustSim(t, simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 2), reconfigWorkload())
	adm, err := sim.Submit("a0")
	if err != nil {
		t.Fatal(err)
	}
	if adm.Job != 0 || adm.Task != "a0" {
		t.Errorf("first submitted admission = %+v", adm)
	}
	if adm.Outcome != AdmissionPending {
		t.Errorf("per-job AC submission outcome = %v, want pending", adm.Outcome)
	}
	if _, err := sim.Submit("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task error = %v, want ErrUnknownTask", err)
	}
	m := sim.Run()
	if m.Total.Released != m.Total.Completed {
		t.Errorf("run with submitted arrival lost jobs: %+v", m.Total)
	}
	if err := sim.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Submit("a0"); !errors.Is(err, ErrStopped) {
		t.Errorf("Submit after Stop error = %v, want ErrStopped", err)
	}
}
