package core

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func periodicTask(id string, proc int, exec, deadline time.Duration, replicas ...int) *sched.Task {
	return &sched.Task{
		ID:       id,
		Kind:     sched.Periodic,
		Period:   deadline,
		Deadline: deadline,
		Priority: 1,
		Subtasks: []sched.Subtask{{Index: 0, Exec: exec, Processor: proc, Replicas: replicas}},
	}
}

func aperiodicTask(id string, proc int, exec, deadline time.Duration, replicas ...int) *sched.Task {
	return &sched.Task{
		ID:               id,
		Kind:             sched.Aperiodic,
		Deadline:         deadline,
		MeanInterarrival: deadline,
		Priority:         1,
		Subtasks:         []sched.Subtask{{Index: 0, Exec: exec, Processor: proc, Replicas: replicas}},
	}
}

func mustController(t *testing.T, cfg Config, procs int) *Controller {
	t.Helper()
	c, err := NewController(cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerRejectsInvalid(t *testing.T) {
	if _, err := NewController(Config{AC: StrategyPerTask, IR: StrategyPerJob, LB: StrategyNone}, 2); err == nil {
		t.Error("NewController accepted contradictory config")
	}
	if _, err := NewController(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 0); err == nil {
		t.Error("NewController accepted zero processors")
	}
}

func TestPerTaskACAdmitsOnceAndReserves(t *testing.T) {
	cfg := Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}
	c := mustController(t, cfg, 1)
	// 40% synthetic utilization on its single processor.
	tk := periodicTask("p", 0, 400*time.Millisecond, time.Second)

	d := c.Arrive(tk, 0, 0)
	if !d.Accept || !d.Tested || !d.Reserved {
		t.Fatalf("first arrival decision = %+v, want accepted+tested+reserved", d)
	}
	if got := c.Ledger().Util(0); !within(got, 0.4) {
		t.Errorf("Util(0) = %g after admission, want 0.4", got)
	}

	// Later jobs release without testing and without new contributions.
	d = c.Arrive(tk, 1, time.Second)
	if !d.Accept || d.Tested || d.Reserved {
		t.Fatalf("second arrival decision = %+v, want accepted without test", d)
	}
	if got := c.Ledger().Util(0); !within(got, 0.4) {
		t.Errorf("Util(0) = %g after second job, want 0.4 (reservation held)", got)
	}
	if c.Stats.Tests != 1 {
		t.Errorf("Tests = %d, want 1", c.Stats.Tests)
	}

	// Expiry must not release the reservation.
	c.ExpireJob(sched.JobRef{Task: "p", Job: 0})
	if got := c.Ledger().Util(0); !within(got, 0.4) {
		t.Errorf("Util(0) = %g after expiry, want 0.4", got)
	}
}

func TestPerTaskACRejectsForLifetime(t *testing.T) {
	cfg := Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}
	c := mustController(t, cfg, 1)
	// First task reserves 0.5; the second (0.3) fails the combined test:
	// f(0.8) = 2.4 > 1.
	big := periodicTask("big", 0, 500*time.Millisecond, time.Second)
	small := periodicTask("small", 0, 300*time.Millisecond, time.Second)

	if d := c.Arrive(big, 0, 0); !d.Accept {
		t.Fatal("big task rejected on empty ledger")
	}
	if d := c.Arrive(small, 0, 0); d.Accept {
		t.Fatal("small task admitted despite infeasible combined load")
	}
	// Rejection is remembered: later jobs are rejected without re-testing.
	tests := c.Stats.Tests
	if d := c.Arrive(small, 1, time.Second); d.Accept {
		t.Error("job of rejected task accepted")
	}
	if c.Stats.Tests != tests {
		t.Error("rejected per-task periodic task was re-tested")
	}
}

func TestPerJobACTestsEveryJobAndExpires(t *testing.T) {
	cfg := Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}
	c := mustController(t, cfg, 1)
	tk := periodicTask("p", 0, 400*time.Millisecond, time.Second)

	d := c.Arrive(tk, 0, 0)
	if !d.Accept || !d.Tested || d.Reserved {
		t.Fatalf("decision = %+v, want accepted+tested, not reserved", d)
	}
	// Before expiry, an identical second job stacks to 0.8: f(0.8) > 1, so
	// it is skipped.
	if d := c.Arrive(tk, 1, 100*time.Millisecond); d.Accept {
		t.Error("job admitted despite stacked utilization")
	}
	// After the first job expires, the next is admitted again.
	c.ExpireJob(sched.JobRef{Task: "p", Job: 0})
	if got := c.Ledger().Util(0); got != 0 {
		t.Fatalf("Util(0) = %g after expiry, want 0", got)
	}
	if d := c.Arrive(tk, 2, time.Second); !d.Accept {
		t.Error("job rejected after previous contribution expired")
	}
	if c.Stats.Tests != 3 {
		t.Errorf("Tests = %d, want 3", c.Stats.Tests)
	}
}

func TestAperiodicAlwaysTested(t *testing.T) {
	for _, ac := range []Strategy{StrategyPerTask, StrategyPerJob} {
		cfg := Config{AC: ac, IR: StrategyNone, LB: StrategyNone}
		c := mustController(t, cfg, 1)
		tk := aperiodicTask("a", 0, 300*time.Millisecond, time.Second)
		for job := int64(0); job < 3; job++ {
			d := c.Arrive(tk, job, time.Duration(job)*time.Second)
			if !d.Tested {
				t.Errorf("AC=%v: aperiodic job %d not tested", ac, job)
			}
			if d.Reserved {
				t.Errorf("AC=%v: aperiodic job %d reserved permanently", ac, job)
			}
			c.ExpireJob(sched.JobRef{Task: "a", Job: job})
		}
	}
}

func TestLBNonePlacesAtHome(t *testing.T) {
	cfg := Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}
	c := mustController(t, cfg, 3)
	tk := periodicTask("p", 1, 100*time.Millisecond, time.Second, 2)
	d := c.Arrive(tk, 0, 0)
	if !d.Accept || d.Placement[0].Proc != 1 || d.Relocated {
		t.Errorf("decision = %+v, want home placement on processor 1", d)
	}
}

func TestLBChoosesLowestUtilizationReplica(t *testing.T) {
	cfg := Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyPerJob}
	c := mustController(t, cfg, 2)
	// Pre-load processor 0 with an unrelated task.
	bg := periodicTask("bg", 0, 300*time.Millisecond, time.Second)
	if d := c.Arrive(bg, 0, 0); !d.Accept {
		t.Fatal("background task rejected")
	}
	// The new task's home is processor 0 but its replica on processor 1 is
	// idle: the heuristic must relocate it.
	tk := aperiodicTask("a", 0, 200*time.Millisecond, time.Second, 1)
	d := c.Arrive(tk, 0, 0)
	if !d.Accept {
		t.Fatal("task rejected")
	}
	if d.Placement[0].Proc != 1 || !d.Relocated {
		t.Errorf("decision = %+v, want relocation to processor 1", d)
	}
	if c.Stats.Relocations != 1 {
		t.Errorf("Relocations = %d, want 1", c.Stats.Relocations)
	}
}

func TestLBHomeWinsTies(t *testing.T) {
	cfg := Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyPerJob}
	c := mustController(t, cfg, 2)
	tk := aperiodicTask("a", 0, 200*time.Millisecond, time.Second, 1)
	d := c.Arrive(tk, 0, 0)
	if d.Placement[0].Proc != 0 || d.Relocated {
		t.Errorf("decision = %+v, want home placement on tie", d)
	}
}

func TestLBPerTaskKeepsFirstAssignment(t *testing.T) {
	cfg := Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyPerTask}
	c := mustController(t, cfg, 2)
	// First arrival balances to processor 1 (home 0 is pre-loaded).
	bg := periodicTask("bg", 0, 300*time.Millisecond, time.Second)
	if d := c.Arrive(bg, 0, 0); !d.Accept {
		t.Fatal("background rejected")
	}
	tk := periodicTask("p", 0, 100*time.Millisecond, time.Second, 1)
	d0 := c.Arrive(tk, 0, 0)
	if !d0.Accept || d0.Placement[0].Proc != 1 {
		t.Fatalf("first decision = %+v, want placement on processor 1", d0)
	}
	// Clear the background load; per-task LB must still reuse the original
	// assignment even though processor 0 now looks better.
	c.Ledger().ExpireJob(sched.JobRef{Task: "bg", Job: 0})
	c.ExpireJob(sched.JobRef{Task: "p", Job: 0})
	d1 := c.Arrive(tk, 1, time.Second)
	if !d1.Accept || d1.Placement[0].Proc != 1 {
		t.Errorf("second decision = %+v, want sticky placement on processor 1", d1)
	}
}

func TestPerTaskACWithLBPerJobRelocatesReservation(t *testing.T) {
	cfg := Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyPerJob}
	c := mustController(t, cfg, 2)
	tk := periodicTask("p", 0, 200*time.Millisecond, time.Second, 1)
	if d := c.Arrive(tk, 0, 0); !d.Accept || d.Placement[0].Proc != 0 {
		t.Fatalf("first arrival not admitted at home")
	}
	// Pre-load home processor so the next job balances away; the permanent
	// reservation must follow.
	bg := aperiodicTask("bg", 0, 300*time.Millisecond, time.Second)
	if d := c.Arrive(bg, 0, 0); !d.Accept {
		t.Fatal("background rejected")
	}
	d := c.Arrive(tk, 1, time.Second)
	if !d.Accept || d.Tested {
		t.Fatalf("decision = %+v, want untested accept", d)
	}
	if d.Placement[0].Proc != 1 {
		t.Fatalf("placement = %+v, want relocation to processor 1", d.Placement)
	}
	if got := c.Ledger().Util(1); !within(got, 0.2) {
		t.Errorf("Util(1) = %g, want 0.2 (reservation moved)", got)
	}
	if got := c.Ledger().Util(0); !within(got, 0.3) {
		t.Errorf("Util(0) = %g, want 0.3 (background only)", got)
	}
}

func TestIdleResetPath(t *testing.T) {
	cfg := Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyNone}
	c := mustController(t, cfg, 1)
	tk := periodicTask("p", 0, 400*time.Millisecond, time.Second)
	if d := c.Arrive(tk, 0, 0); !d.Accept {
		t.Fatal("task rejected")
	}
	ref := sched.JobRef{Task: "p", Job: 0}
	n := c.IdleReset([]sched.EntryRef{{Ref: ref, Stage: 0, Proc: 0}})
	if n != 1 {
		t.Fatalf("IdleReset removed %d contributions, want 1", n)
	}
	if got := c.Ledger().Util(0); got != 0 {
		t.Errorf("Util(0) = %g after idle reset, want 0", got)
	}
	if c.Stats.IdleResets != 1 {
		t.Errorf("Stats.IdleResets = %d, want 1", c.Stats.IdleResets)
	}
	// Resetting an unknown job is harmless.
	if n := c.IdleReset([]sched.EntryRef{{Ref: sched.JobRef{Task: "x", Job: 1}, Stage: 0, Proc: 0}}); n != 0 {
		t.Errorf("IdleReset of unknown job removed %d", n)
	}
}

func within(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}
