package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// Decision is the admission controller's answer to a "Task Arrive" event.
type Decision struct {
	// Accept reports whether the job may be released.
	Accept bool
	// Placement is the processor assignment for each stage of the job. It is
	// nil when Accept is false. Callers must treat it as read-only: under
	// LB-none it aliases the controller's cached per-task home placement.
	Placement []sched.PlacedStage
	// Relocated reports whether the first stage was assigned away from the
	// task's home (arrival) processor, so the release must go to the
	// duplicate's task effector.
	Relocated bool
	// Tested reports whether an admission test was actually evaluated for
	// this arrival (per-task AC skips the test for jobs of already-admitted
	// periodic tasks).
	Tested bool
	// Reserved reports that the accepted contributions are a permanent
	// per-task reservation: the caller must not schedule a deadline-expiry
	// removal for them.
	Reserved bool
}

// Controller implements the centralized admission control and load balancing
// services deployed on the task manager processor (paper Section 3). It owns
// the AUB synthetic-utilization ledger and the per-task decision memory, and
// is driven by "Task Arrive" and "Idle Resetting" events.
//
// Concurrency: Arrive, ArriveBatch, ExpireJob, IdleReset, and Location are
// safe to call from multiple goroutines. Aperiodic arrivals under LB-none
// run lock-free in the controller (the sharded ledger provides the admission
// atomicity); periodic-task flows serialize on an internal mutex protecting
// the per-task decision memory. Reconfigure and RemoveTask mutate the
// strategy configuration and decision memory and must not run concurrently
// with arrivals — callers quiesce first (the live binding holds its
// reconfiguration write lock; the DES engine is single-threaded).
type Controller struct {
	cfg    Config
	ledger *sched.ShardedLedger

	// taskMu guards the per-task decision memory below. Every periodic-task
	// flow (per-task AC decisions, LB-per-task placement memoization) holds
	// it; aperiodic arrivals never touch these maps.
	taskMu sync.Mutex
	// admitted and rejected record the per-task AC decision for periodic
	// tasks: once admitted, jobs release without re-testing; once rejected,
	// the task is not re-tested (the test runs only "when a task first
	// arrives").
	admitted map[string]bool
	rejected map[string]bool
	// placements records the per-task LB assignment, fixed at first arrival
	// under LB-per-task.
	placements map[string][]sched.PlacedStage
	// reservations maps an admitted per-task periodic task to the job
	// reference holding its permanent ledger contribution.
	reservations map[string]sched.JobRef
	// homePlace caches each task's home placement (a pure function of the
	// task's subtasks) keyed by task ID, so LB-none decisions do not allocate
	// per arrival and need no lock. Cached slices are handed out read-only;
	// RemoveTask invalidates.
	homePlace sync.Map

	// scratch pools balanced-placement accumulators (*[]float64, one slot per
	// processor), so concurrent balanced placements neither allocate nor
	// contend on a shared buffer.
	scratch sync.Pool

	// Stats accumulate controller-side counters for the experiments. Fields
	// are updated atomically; read them only after arrivals quiesce.
	Stats ControllerStats

	// timing, when non-nil, measures operation durations with the real
	// clock (EnableTiming). OpStats adds are internally synchronized.
	timing *Timing
}

// ControllerStats counts controller activity.
type ControllerStats struct {
	// Tests is the number of admission tests evaluated.
	Tests int64
	// Accepts and Rejects count decisions returned to task effectors.
	Accepts int64
	Rejects int64
	// Relocations counts accepted jobs whose first stage moved off the
	// arrival processor.
	Relocations int64
	// IdleResets counts contributions removed by idle-resetting reports.
	IdleResets int64
	// Expiries counts contributions removed because their job's absolute
	// deadline passed.
	Expiries int64
	// TaskRemovals counts contributions withdrawn because a task left the
	// system entirely (RemoveTask).
	TaskRemovals int64
	// Reconfigs counts strategy reconfigurations applied to this controller,
	// and ReconfigReleased the ledger contributions withdrawn by their
	// reservation rebases.
	Reconfigs        int64
	ReconfigReleased int64
}

// NewController returns a controller for the given strategy configuration
// over numProcs application processors. The configuration must be valid.
// The admission plane runs unsharded (a single-shard ledger), which keeps
// every ledger mutation bit-identical to the historical serial controller.
func NewController(cfg Config, numProcs int) (*Controller, error) {
	return NewControllerSharded(cfg, numProcs, 1)
}

// NewControllerSharded returns a controller whose admission plane is split
// into the given number of shards (clamped to [1, min(numProcs, 64)]).
// Concurrent submissions whose placements stay inside one shard's processor
// block admit in parallel without a global lock; shards == 1 behaves exactly
// like NewController.
func NewControllerSharded(cfg Config, numProcs, shards int) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numProcs <= 0 {
		return nil, fmt.Errorf("core: controller needs at least one processor, got %d", numProcs)
	}
	c := &Controller{
		cfg:          cfg,
		ledger:       sched.NewShardedLedger(numProcs, shards),
		admitted:     make(map[string]bool),
		rejected:     make(map[string]bool),
		placements:   make(map[string][]sched.PlacedStage),
		reservations: make(map[string]sched.JobRef),
	}
	c.scratch.New = func() any {
		buf := make([]float64, numProcs)
		return &buf
	}
	return c, nil
}

// Config returns the controller's strategy configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reconfigure swaps the controller's strategy combination in place while the
// system keeps running: the admission ledger — and with it every in-flight
// job's contributions — survives, and only the strategy-specific decision
// memory is rebased under the new configuration:
//
//   - AC leaving per-task: the permanent per-task reservations are withdrawn
//     from the ledger (per-job admission tests each arrival individually),
//     and the per-task admitted/rejected memory is cleared so every task is
//     re-evaluated under the new strategy. Jobs already released keep
//     running: a reservation only backs future admission decisions.
//   - AC entering per-task: nothing is withdrawn; each periodic task is
//     tested and reserved at its next arrival.
//   - LB change: per-task placement memory is cleared so the next arrival
//     computes a fresh assignment under the new balancing rule. An existing
//     per-task reservation is not moved eagerly; under LB-per-job it follows
//     the next job's relocation as usual.
//
// Invalid target combinations are rejected without touching any state. It
// returns the number of ledger contributions released by the rebase. The
// caller must quiesce arrivals first (see the Controller comment).
func (c *Controller) Reconfigure(cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	c.taskMu.Lock()
	defer c.taskMu.Unlock()
	released := 0
	if c.cfg.AC == StrategyPerTask && cfg.AC != StrategyPerTask {
		// Withdraw in sorted task order so the ledger's floating-point
		// subtraction sequence is reproducible run to run.
		tasks := make([]string, 0, len(c.reservations))
		for task := range c.reservations {
			tasks = append(tasks, task)
		}
		sort.Strings(tasks)
		for _, task := range tasks {
			released += c.ledger.WithdrawJob(c.reservations[task])
			delete(c.reservations, task)
		}
		clear(c.admitted)
		clear(c.rejected)
	}
	if c.cfg.LB != cfg.LB {
		clear(c.placements)
	}
	c.cfg = cfg
	atomic.AddInt64(&c.Stats.Reconfigs, 1)
	atomic.AddInt64(&c.Stats.ReconfigReleased, int64(released))
	return released, nil
}

// Ledger exposes the sharded synthetic-utilization ledger for
// instrumentation and the idle-resetting path.
func (c *Controller) Ledger() *sched.ShardedLedger { return c.ledger }

// Reservations snapshots the permanent per-task reservation references
// (AC-per-task only), sorted by task: the ledger jobs a strategy swap away
// from per-task admission control will withdraw. The live AC's replication
// stream uses it to mirror exactly those withdrawals on the warm standby.
func (c *Controller) Reservations() []sched.JobRef {
	c.taskMu.Lock()
	defer c.taskMu.Unlock()
	refs := make([]sched.JobRef, 0, len(c.reservations))
	for _, ref := range c.reservations {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Task < refs[j].Task })
	return refs
}

// homePlacement places every stage on its home processor.
func homePlacement(t *sched.Task) []sched.PlacedStage {
	out := make([]sched.PlacedStage, len(t.Subtasks))
	for i, st := range t.Subtasks {
		out[i] = sched.PlacedStage{Stage: i, Proc: st.Processor, Util: t.StageUtil(i)}
	}
	return out
}

// cachedHome returns the task's home placement from the per-task cache,
// computing it on first use. The returned slice is shared and read-only.
func (c *Controller) cachedHome(t *sched.Task) []sched.PlacedStage {
	if p, ok := c.homePlace.Load(t.ID); ok {
		return p.([]sched.PlacedStage)
	}
	p, _ := c.homePlace.LoadOrStore(t.ID, homePlacement(t))
	return p.([]sched.PlacedStage)
}

// balancedPlacement implements the paper's load balancing heuristic: each
// stage goes to the candidate processor (home or replica) with the lowest
// synthetic utilization, accounting for the contributions already placed for
// earlier stages of the same job. Ties go to the candidate listed first, so
// the home processor wins ties deterministically. The per-job accumulator is
// a pooled dense scratch slice, zeroed before it is returned to the pool.
func (c *Controller) balancedPlacement(t *sched.Task) []sched.PlacedStage {
	out := make([]sched.PlacedStage, len(t.Subtasks))
	sp := c.scratch.Get().(*[]float64)
	delta := *sp
	for i, st := range t.Subtasks {
		u := t.StageUtil(i)
		best := st.Processor
		bestUtil := c.ledger.Util(best) + delta[best]
		for _, cand := range st.Replicas {
			if cu := c.ledger.Util(cand) + delta[cand]; cu < bestUtil {
				best, bestUtil = cand, cu
			}
		}
		out[i] = sched.PlacedStage{Stage: i, Proc: best, Util: u}
		delta[best] += u
	}
	for _, p := range out {
		delta[p.Proc] = 0
	}
	c.scratch.Put(sp)
	return out
}

// placeFor computes the placement for an arriving job per the LB strategy.
// Callers hold taskMu when t is periodic (the per-task memo paths).
func (c *Controller) placeFor(t *sched.Task, job int64) []sched.PlacedStage {
	switch c.cfg.LB {
	case StrategyNone:
		return c.cachedHome(t)
	case StrategyPerTask:
		// Periodic tasks are assigned once, at first arrival; every
		// aperiodic arrival is an independent task with a single release and
		// is assigned at that arrival.
		if t.Kind == sched.Periodic {
			if p, ok := c.placements[t.ID]; ok {
				return clonePlacement(p)
			}
			p := c.balancedPlacement(t)
			c.placements[t.ID] = clonePlacement(p)
			return p
		}
		return c.balancedPlacement(t)
	case StrategyPerJob:
		return c.balancedPlacement(t)
	default:
		return c.cachedHome(t)
	}
}

func clonePlacement(p []sched.PlacedStage) []sched.PlacedStage {
	return append([]sched.PlacedStage(nil), p...)
}

// Arrive processes a "Task Arrive" event for job number job of task t at
// virtual time now, and returns the admission decision. For accepted jobs
// whose contributions expire (everything except per-task periodic
// reservations), the caller must arrange to call ExpireJob at now +
// t.Deadline.
func (c *Controller) Arrive(t *sched.Task, job int64, now time.Duration) Decision {
	if t.Kind == sched.Aperiodic {
		// Every aperiodic arrival is an independent task with one release:
		// it is tested regardless of the AC strategy, and it touches no
		// per-task decision memory, so it proceeds without taskMu.
		return c.testAndAdmit(t, sched.JobRef{Task: t.ID, Job: job}, now, false)
	}

	c.taskMu.Lock()
	defer c.taskMu.Unlock()
	switch c.cfg.AC {
	case StrategyPerJob:
		return c.testAndAdmit(t, sched.JobRef{Task: t.ID, Job: job}, now, false)
	case StrategyPerTask:
		return c.arrivePerTask(t, job, now)
	default:
		return Decision{}
	}
}

// BatchArrival is one "Task Arrive" event of an ArriveBatch call.
type BatchArrival struct {
	Task *sched.Task
	Job  int64
	Now  time.Duration
}

// ArriveBatch processes a batch of arrivals and returns one decision per
// arrival, in order. When every arrival is aperiodic and load balancing is
// off, the batch is admitted through the ledger's grouped batch path — each
// admission shard's lock is taken at most once for the whole batch — with
// decisions identical to submitting the arrivals sequentially. Any other
// strategy mix falls back to per-arrival Arrive calls.
func (c *Controller) ArriveBatch(arrivals []BatchArrival) []Decision {
	out := make([]Decision, len(arrivals))
	grouped := c.cfg.LB == StrategyNone
	if grouped {
		for i := range arrivals {
			if arrivals[i].Task.Kind != sched.Aperiodic {
				grouped = false
				break
			}
		}
	}
	if !grouped {
		for i := range arrivals {
			out[i] = c.Arrive(arrivals[i].Task, arrivals[i].Job, arrivals[i].Now)
		}
		return out
	}
	cands := make([]sched.BatchCandidate, len(arrivals))
	for i := range arrivals {
		t := arrivals[i].Task
		cands[i] = sched.BatchCandidate{
			Ref:       sched.JobRef{Task: t.ID, Job: arrivals[i].Job},
			Kind:      t.Kind,
			Placement: c.cachedHome(t),
			Expiry:    arrivals[i].Now + t.Deadline,
		}
	}
	var t0 time.Time
	if c.timing != nil {
		t0 = time.Now()
	}
	decisions := c.ledger.TestAndAddBatch(cands)
	if c.timing != nil {
		c.timing.Test.Add(time.Since(t0))
	}
	atomic.AddInt64(&c.Stats.Tests, int64(len(arrivals)))
	accepts := int64(0)
	for i, ok := range decisions {
		if !ok {
			out[i] = Decision{Tested: true}
			continue
		}
		accepts++
		// Under LB-none the placement is the home placement, so the first
		// stage never moves off the arrival processor.
		out[i] = Decision{Accept: true, Placement: cands[i].Placement, Tested: true}
	}
	atomic.AddInt64(&c.Stats.Accepts, accepts)
	atomic.AddInt64(&c.Stats.Rejects, int64(len(arrivals))-accepts)
	return out
}

// arrivePerTask handles periodic arrivals under per-task admission control.
// Caller holds taskMu.
func (c *Controller) arrivePerTask(t *sched.Task, job int64, now time.Duration) Decision {
	if c.rejected[t.ID] {
		atomic.AddInt64(&c.Stats.Rejects, 1)
		return Decision{}
	}
	if !c.admitted[t.ID] {
		// First arrival: test once and reserve the task's synthetic
		// utilization for its lifetime (permanent contribution under the
		// first arrival's job reference).
		ref := sched.JobRef{Task: t.ID, Job: job}
		d := c.testAndAdmit(t, ref, now, true)
		if d.Accept {
			c.admitted[t.ID] = true
			c.reservations[t.ID] = ref
		} else {
			c.rejected[t.ID] = true
		}
		return d
	}

	// Subsequent jobs of an admitted task release without re-testing. Under
	// LB-per-job the assignment plan may still change: the reservation
	// follows the job to the new placement.
	placement := c.placeFor(t, job)
	if c.cfg.LB == StrategyPerJob {
		if err := c.ledger.Relocate(c.reservations[t.ID], placement); err != nil {
			// The reservation is always present for admitted tasks; an error
			// here is a programming bug worth surfacing loudly in tests.
			panic(fmt.Sprintf("core: relocate reservation for admitted task %s: %v", t.ID, err))
		}
	} else if p, ok := c.placements[t.ID]; ok {
		placement = clonePlacement(p)
	}
	atomic.AddInt64(&c.Stats.Accepts, 1)
	d := Decision{
		Accept:    true,
		Placement: placement,
		Relocated: placement[0].Proc != t.Subtasks[0].Processor,
	}
	if d.Relocated {
		atomic.AddInt64(&c.Stats.Relocations, 1)
	}
	return d
}

// testAndAdmit runs the load balancer's Location call and the AUB admission
// test, recording contributions when the job is accepted. The test and the
// commit are one atomic ledger operation (TestAndAdd), so two concurrent
// candidates can never both pass a test that only has room for one. Callers
// hold taskMu when t is periodic.
func (c *Controller) testAndAdmit(t *sched.Task, ref sched.JobRef, now time.Duration, permanent bool) Decision {
	var t0 time.Time
	if c.timing != nil {
		t0 = time.Now()
	}
	placement := c.placeFor(t, ref.Job)
	var t1 time.Time
	if c.timing != nil {
		t1 = time.Now()
		c.timing.Location.Add(t1.Sub(t0))
	}
	expiry := now + t.Deadline
	if permanent {
		expiry = 0
	}
	atomic.AddInt64(&c.Stats.Tests, 1)
	admitted, _ := c.ledger.TestAndAdd(ref, t.Kind, placement, permanent, expiry)
	if c.timing != nil {
		c.timing.Test.Add(time.Since(t1))
	}
	if !admitted {
		atomic.AddInt64(&c.Stats.Rejects, 1)
		return Decision{Tested: true}
	}
	// Remember the placement for LB-per-task reuse by later jobs.
	if c.cfg.LB == StrategyPerTask && t.Kind == sched.Periodic {
		c.placements[t.ID] = clonePlacement(placement)
	}
	atomic.AddInt64(&c.Stats.Accepts, 1)
	d := Decision{
		Accept:    true,
		Placement: placement,
		Relocated: placement[0].Proc != t.Subtasks[0].Processor,
		Tested:    true,
		Reserved:  permanent,
	}
	if d.Relocated {
		atomic.AddInt64(&c.Stats.Relocations, 1)
	}
	return d
}

// Location answers the paper's LB "Location" call for inspection purposes:
// it computes the placement the load balancer would propose for the given
// arrival without mutating any per-task assignment memory. The admission
// path itself uses the internal (memoizing) placement.
func (c *Controller) Location(t *sched.Task, job int64) []sched.PlacedStage {
	switch c.cfg.LB {
	case StrategyNone:
		return homePlacement(t)
	case StrategyPerTask:
		if t.Kind == sched.Periodic {
			c.taskMu.Lock()
			p, ok := c.placements[t.ID]
			if ok {
				p = clonePlacement(p)
			}
			c.taskMu.Unlock()
			if ok {
				return p
			}
		}
		return c.balancedPlacement(t)
	case StrategyPerJob:
		return c.balancedPlacement(t)
	default:
		return homePlacement(t)
	}
}

// ExpireJob removes the remaining contributions of a job whose absolute
// deadline passed. Per-task reservations are unaffected. It returns the
// number of contributions removed (zero for jobs already fully reset or
// unknown), so callers can account expiry work without rescanning.
func (c *Controller) ExpireJob(ref sched.JobRef) int {
	n := c.ledger.ExpireJob(ref)
	atomic.AddInt64(&c.Stats.Expiries, int64(n))
	return n
}

// RemoveTask withdraws a task from the system entirely: its remaining ledger
// contributions (including a permanent per-task reservation) are released
// through the ledger's task index, and the controller's per-task decision
// memory is cleared so a task re-registered under the same name is treated
// as new. It returns the number of contributions removed. The caller must
// quiesce arrivals first (see the Controller comment).
func (c *Controller) RemoveTask(task string) int {
	n := c.ledger.RemoveTask(task)
	atomic.AddInt64(&c.Stats.TaskRemovals, int64(n))
	c.taskMu.Lock()
	delete(c.admitted, task)
	delete(c.rejected, task)
	delete(c.placements, task)
	delete(c.reservations, task)
	c.taskMu.Unlock()
	c.homePlace.Delete(task)
	return n
}

// IdleReset processes an "Idle Resetting" event: the reported subjobs are
// marked complete and their contributions removed per the resetting rule. It
// returns the number of contributions actually removed.
func (c *Controller) IdleReset(reports []sched.EntryRef) int {
	var t0 time.Time
	if c.timing != nil {
		t0 = time.Now()
	}
	n := 0
	for _, r := range reports {
		if c.ledger.ResetReported(r) {
			n++
		}
	}
	if c.timing != nil {
		c.timing.Reset.Add(time.Since(t0))
	}
	atomic.AddInt64(&c.Stats.IdleResets, int64(n))
	return n
}
