package core

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// Decision is the admission controller's answer to a "Task Arrive" event.
type Decision struct {
	// Accept reports whether the job may be released.
	Accept bool
	// Placement is the processor assignment for each stage of the job. It is
	// nil when Accept is false. Callers must treat it as read-only: under
	// LB-none it aliases the controller's cached per-task home placement.
	Placement []sched.PlacedStage
	// Relocated reports whether the first stage was assigned away from the
	// task's home (arrival) processor, so the release must go to the
	// duplicate's task effector.
	Relocated bool
	// Tested reports whether an admission test was actually evaluated for
	// this arrival (per-task AC skips the test for jobs of already-admitted
	// periodic tasks).
	Tested bool
	// Reserved reports that the accepted contributions are a permanent
	// per-task reservation: the caller must not schedule a deadline-expiry
	// removal for them.
	Reserved bool
}

// Controller implements the centralized admission control and load balancing
// services deployed on the task manager processor (paper Section 3). It owns
// the AUB synthetic-utilization ledger and the per-task decision memory, and
// is driven by "Task Arrive" and "Idle Resetting" events.
//
// Controller is not safe for concurrent use: the paper's architecture is a
// single centralized AC component, and both bindings serialize access (the
// DES engine is single-threaded; the live binding runs the controller in one
// service goroutine).
type Controller struct {
	cfg    Config
	ledger *sched.Ledger

	// admitted and rejected record the per-task AC decision for periodic
	// tasks: once admitted, jobs release without re-testing; once rejected,
	// the task is not re-tested (the test runs only "when a task first
	// arrives").
	admitted map[string]bool
	rejected map[string]bool
	// placements records the per-task LB assignment, fixed at first arrival
	// under LB-per-task.
	placements map[string][]sched.PlacedStage
	// reservations maps an admitted per-task periodic task to the job
	// reference holding its permanent ledger contribution.
	reservations map[string]sched.JobRef
	// homePlace caches each task's home placement (a pure function of the
	// task's subtasks), so LB-none decisions do not allocate per arrival.
	// Cached slices are handed out read-only; RemoveTask invalidates.
	homePlace map[string][]sched.PlacedStage

	// deltaScratch is the balanced-placement accumulator, one slot per
	// processor, zeroed after each use — the dense replacement for the old
	// per-call map[int]float64.
	deltaScratch []float64

	// Stats accumulate controller-side counters for the experiments.
	Stats ControllerStats

	// timing, when non-nil, measures operation durations with the real
	// clock (EnableTiming).
	timing *Timing
}

// ControllerStats counts controller activity.
type ControllerStats struct {
	// Tests is the number of admission tests evaluated.
	Tests int64
	// Accepts and Rejects count decisions returned to task effectors.
	Accepts int64
	Rejects int64
	// Relocations counts accepted jobs whose first stage moved off the
	// arrival processor.
	Relocations int64
	// IdleResets counts contributions removed by idle-resetting reports.
	IdleResets int64
	// Expiries counts contributions removed because their job's absolute
	// deadline passed.
	Expiries int64
	// TaskRemovals counts contributions withdrawn because a task left the
	// system entirely (RemoveTask).
	TaskRemovals int64
	// Reconfigs counts strategy reconfigurations applied to this controller,
	// and ReconfigReleased the ledger contributions withdrawn by their
	// reservation rebases.
	Reconfigs        int64
	ReconfigReleased int64
}

// NewController returns a controller for the given strategy configuration
// over numProcs application processors. The configuration must be valid.
func NewController(cfg Config, numProcs int) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numProcs <= 0 {
		return nil, fmt.Errorf("core: controller needs at least one processor, got %d", numProcs)
	}
	return &Controller{
		cfg:          cfg,
		ledger:       sched.NewLedger(numProcs),
		admitted:     make(map[string]bool),
		rejected:     make(map[string]bool),
		placements:   make(map[string][]sched.PlacedStage),
		reservations: make(map[string]sched.JobRef),
		homePlace:    make(map[string][]sched.PlacedStage),
		deltaScratch: make([]float64, numProcs),
	}, nil
}

// Config returns the controller's strategy configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reconfigure swaps the controller's strategy combination in place while the
// system keeps running: the admission ledger — and with it every in-flight
// job's contributions — survives, and only the strategy-specific decision
// memory is rebased under the new configuration:
//
//   - AC leaving per-task: the permanent per-task reservations are withdrawn
//     from the ledger (per-job admission tests each arrival individually),
//     and the per-task admitted/rejected memory is cleared so every task is
//     re-evaluated under the new strategy. Jobs already released keep
//     running: a reservation only backs future admission decisions.
//   - AC entering per-task: nothing is withdrawn; each periodic task is
//     tested and reserved at its next arrival.
//   - LB change: per-task placement memory is cleared so the next arrival
//     computes a fresh assignment under the new balancing rule. An existing
//     per-task reservation is not moved eagerly; under LB-per-job it follows
//     the next job's relocation as usual.
//
// Invalid target combinations are rejected without touching any state. It
// returns the number of ledger contributions released by the rebase.
func (c *Controller) Reconfigure(cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	released := 0
	if c.cfg.AC == StrategyPerTask && cfg.AC != StrategyPerTask {
		for task, ref := range c.reservations {
			released += c.ledger.WithdrawJob(ref)
			delete(c.reservations, task)
		}
		clear(c.admitted)
		clear(c.rejected)
	}
	if c.cfg.LB != cfg.LB {
		clear(c.placements)
	}
	c.cfg = cfg
	c.Stats.Reconfigs++
	c.Stats.ReconfigReleased += int64(released)
	return released, nil
}

// Ledger exposes the synthetic-utilization ledger for instrumentation and
// the idle-resetting path.
func (c *Controller) Ledger() *sched.Ledger { return c.ledger }

// homePlacement places every stage on its home processor.
func homePlacement(t *sched.Task) []sched.PlacedStage {
	out := make([]sched.PlacedStage, len(t.Subtasks))
	for i, st := range t.Subtasks {
		out[i] = sched.PlacedStage{Stage: i, Proc: st.Processor, Util: t.StageUtil(i)}
	}
	return out
}

// cachedHome returns the task's home placement from the per-task cache,
// computing it on first use. The returned slice is shared and read-only.
func (c *Controller) cachedHome(t *sched.Task) []sched.PlacedStage {
	if p, ok := c.homePlace[t.ID]; ok {
		return p
	}
	p := homePlacement(t)
	c.homePlace[t.ID] = p
	return p
}

// balancedPlacement implements the paper's load balancing heuristic: each
// stage goes to the candidate processor (home or replica) with the lowest
// synthetic utilization, accounting for the contributions already placed for
// earlier stages of the same job. Ties go to the candidate listed first, so
// the home processor wins ties deterministically. The per-job accumulator is
// the controller's reusable dense scratch, zeroed on exit.
func (c *Controller) balancedPlacement(t *sched.Task) []sched.PlacedStage {
	out := make([]sched.PlacedStage, len(t.Subtasks))
	delta := c.deltaScratch
	for i, st := range t.Subtasks {
		u := t.StageUtil(i)
		best := st.Processor
		bestUtil := c.ledger.Util(best) + delta[best]
		for _, cand := range st.Replicas {
			if cu := c.ledger.Util(cand) + delta[cand]; cu < bestUtil {
				best, bestUtil = cand, cu
			}
		}
		out[i] = sched.PlacedStage{Stage: i, Proc: best, Util: u}
		delta[best] += u
	}
	for _, p := range out {
		delta[p.Proc] = 0
	}
	return out
}

// placeFor computes the placement for an arriving job per the LB strategy.
func (c *Controller) placeFor(t *sched.Task, job int64) []sched.PlacedStage {
	switch c.cfg.LB {
	case StrategyNone:
		return c.cachedHome(t)
	case StrategyPerTask:
		// Periodic tasks are assigned once, at first arrival; every
		// aperiodic arrival is an independent task with a single release and
		// is assigned at that arrival.
		if t.Kind == sched.Periodic {
			if p, ok := c.placements[t.ID]; ok {
				return clonePlacement(p)
			}
			p := c.balancedPlacement(t)
			c.placements[t.ID] = clonePlacement(p)
			return p
		}
		return c.balancedPlacement(t)
	case StrategyPerJob:
		return c.balancedPlacement(t)
	default:
		return c.cachedHome(t)
	}
}

func clonePlacement(p []sched.PlacedStage) []sched.PlacedStage {
	return append([]sched.PlacedStage(nil), p...)
}

// Arrive processes a "Task Arrive" event for job number job of task t at
// virtual time now, and returns the admission decision. For accepted jobs
// whose contributions expire (everything except per-task periodic
// reservations), the caller must arrange to call ExpireJob at now +
// t.Deadline.
func (c *Controller) Arrive(t *sched.Task, job int64, now time.Duration) Decision {
	if t.Kind == sched.Aperiodic {
		// Every aperiodic arrival is an independent task with one release:
		// it is tested regardless of the AC strategy.
		return c.testAndAdmit(t, sched.JobRef{Task: t.ID, Job: job}, now, false)
	}

	switch c.cfg.AC {
	case StrategyPerJob:
		return c.testAndAdmit(t, sched.JobRef{Task: t.ID, Job: job}, now, false)
	case StrategyPerTask:
		return c.arrivePerTask(t, job, now)
	default:
		return Decision{}
	}
}

// arrivePerTask handles periodic arrivals under per-task admission control.
func (c *Controller) arrivePerTask(t *sched.Task, job int64, now time.Duration) Decision {
	if c.rejected[t.ID] {
		c.Stats.Rejects++
		return Decision{}
	}
	if !c.admitted[t.ID] {
		// First arrival: test once and reserve the task's synthetic
		// utilization for its lifetime (permanent contribution under the
		// first arrival's job reference).
		ref := sched.JobRef{Task: t.ID, Job: job}
		d := c.testAndAdmit(t, ref, now, true)
		if d.Accept {
			c.admitted[t.ID] = true
			c.reservations[t.ID] = ref
		} else {
			c.rejected[t.ID] = true
		}
		return d
	}

	// Subsequent jobs of an admitted task release without re-testing. Under
	// LB-per-job the assignment plan may still change: the reservation
	// follows the job to the new placement.
	placement := c.placeFor(t, job)
	if c.cfg.LB == StrategyPerJob {
		if err := c.ledger.Relocate(c.reservations[t.ID], placement); err != nil {
			// The reservation is always present for admitted tasks; an error
			// here is a programming bug worth surfacing loudly in tests.
			panic(fmt.Sprintf("core: relocate reservation for admitted task %s: %v", t.ID, err))
		}
	} else if p, ok := c.placements[t.ID]; ok {
		placement = clonePlacement(p)
	}
	c.Stats.Accepts++
	d := Decision{
		Accept:    true,
		Placement: placement,
		Relocated: placement[0].Proc != t.Subtasks[0].Processor,
	}
	if d.Relocated {
		c.Stats.Relocations++
	}
	return d
}

// testAndAdmit runs the load balancer's Location call and the AUB admission
// test, recording contributions when the job is accepted.
func (c *Controller) testAndAdmit(t *sched.Task, ref sched.JobRef, now time.Duration, permanent bool) Decision {
	var t0 time.Time
	if c.timing != nil {
		t0 = time.Now()
	}
	placement := c.placeFor(t, ref.Job)
	var t1 time.Time
	if c.timing != nil {
		t1 = time.Now()
		c.timing.Location.Add(t1.Sub(t0))
	}
	c.Stats.Tests++
	admissible := c.ledger.Admissible(placement)
	if c.timing != nil {
		c.timing.Test.Add(time.Since(t1))
	}
	if !admissible {
		c.Stats.Rejects++
		return Decision{Tested: true}
	}
	expiry := now + t.Deadline
	if permanent {
		expiry = 0
	}
	if err := c.ledger.AddJob(ref, t.Kind, placement, permanent, expiry); err != nil {
		c.Stats.Rejects++
		return Decision{Tested: true}
	}
	// Remember the placement for LB-per-task reuse by later jobs.
	if c.cfg.LB == StrategyPerTask && t.Kind == sched.Periodic {
		c.placements[t.ID] = clonePlacement(placement)
	}
	c.Stats.Accepts++
	d := Decision{
		Accept:    true,
		Placement: placement,
		Relocated: placement[0].Proc != t.Subtasks[0].Processor,
		Tested:    true,
		Reserved:  permanent,
	}
	if d.Relocated {
		c.Stats.Relocations++
	}
	return d
}

// Location answers the paper's LB "Location" call for inspection purposes:
// it computes the placement the load balancer would propose for the given
// arrival without mutating any per-task assignment memory. The admission
// path itself uses the internal (memoizing) placement.
func (c *Controller) Location(t *sched.Task, job int64) []sched.PlacedStage {
	switch c.cfg.LB {
	case StrategyNone:
		return homePlacement(t)
	case StrategyPerTask:
		if t.Kind == sched.Periodic {
			if p, ok := c.placements[t.ID]; ok {
				return clonePlacement(p)
			}
		}
		return c.balancedPlacement(t)
	case StrategyPerJob:
		return c.balancedPlacement(t)
	default:
		return homePlacement(t)
	}
}

// ExpireJob removes the remaining contributions of a job whose absolute
// deadline passed. Per-task reservations are unaffected. It returns the
// number of contributions removed (zero for jobs already fully reset or
// unknown), so callers can account expiry work without rescanning.
func (c *Controller) ExpireJob(ref sched.JobRef) int {
	n := c.ledger.ExpireJob(ref)
	c.Stats.Expiries += int64(n)
	return n
}

// RemoveTask withdraws a task from the system entirely: its remaining ledger
// contributions (including a permanent per-task reservation) are released
// through the ledger's task index, and the controller's per-task decision
// memory is cleared so a task re-registered under the same name is treated
// as new. It returns the number of contributions removed.
func (c *Controller) RemoveTask(task string) int {
	n := c.ledger.RemoveTask(task)
	c.Stats.TaskRemovals += int64(n)
	delete(c.admitted, task)
	delete(c.rejected, task)
	delete(c.placements, task)
	delete(c.reservations, task)
	delete(c.homePlace, task)
	return n
}

// IdleReset processes an "Idle Resetting" event: the reported subjobs are
// marked complete and their contributions removed per the resetting rule. It
// returns the number of contributions actually removed.
func (c *Controller) IdleReset(reports []sched.EntryRef) int {
	var t0 time.Time
	if c.timing != nil {
		t0 = time.Now()
	}
	n := 0
	for _, r := range reports {
		if c.ledger.ResetReported(r) {
			n++
		}
	}
	if c.timing != nil {
		c.timing.Reset.Add(time.Since(t0))
	}
	c.Stats.IdleResets += int64(n)
	return n
}
