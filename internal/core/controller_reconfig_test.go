package core

import (
	"testing"
	"time"
)

// TestControllerReconfigureRebasesReservations pins the policy-object half
// of the swap: moving AC off per-task withdraws reservations and clears the
// per-task decision memory, so the next arrival is tested fresh.
func TestControllerReconfigureRebasesReservations(t *testing.T) {
	c := mustController(t, Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}, 2)
	tk := periodicTask("p", 0, 200*time.Millisecond, time.Second)
	d := c.Arrive(tk, 0, 0)
	if !d.Accept || !d.Reserved {
		t.Fatalf("first arrival = %+v", d)
	}
	if got := c.Ledger().Util(0); got == 0 {
		t.Fatal("no reservation recorded")
	}

	released, err := c.Reconfigure(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Errorf("released = %d, want 1", released)
	}
	if got := c.Ledger().Util(0); got != 0 {
		t.Errorf("util after rebase = %g", got)
	}
	if err := c.Ledger().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Next arrival is tested individually under per-job AC.
	before := c.Stats.Tests
	d = c.Arrive(tk, 1, 100*time.Millisecond)
	if !d.Accept || !d.Tested || d.Reserved {
		t.Errorf("per-job arrival after swap = %+v", d)
	}
	if c.Stats.Tests != before+1 {
		t.Errorf("no fresh admission test after swap")
	}
	if c.Stats.Reconfigs != 1 || c.Stats.ReconfigReleased != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

// TestControllerReconfigureKeepsReservationsWhenACUnchanged pins that a
// swap not touching the AC axis leaves admitted tasks admitted.
func TestControllerReconfigureKeepsReservationsWhenACUnchanged(t *testing.T) {
	c := mustController(t, Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}, 2)
	tk := periodicTask("p", 0, 200*time.Millisecond, time.Second, 1)
	if d := c.Arrive(tk, 0, 0); !d.Accept {
		t.Fatalf("first arrival rejected")
	}
	util := c.Ledger().Util(0)
	if _, err := c.Reconfigure(Config{AC: StrategyPerTask, IR: StrategyPerTask, LB: StrategyPerTask}); err != nil {
		t.Fatal(err)
	}
	if got := c.Ledger().Util(0); got != util {
		t.Errorf("reservation moved: %g -> %g", util, got)
	}
	// Subsequent jobs still release without re-testing.
	before := c.Stats.Tests
	if d := c.Arrive(tk, 1, time.Second); !d.Accept {
		t.Error("admitted task re-tested and rejected after IR/LB-only swap")
	}
	if c.Stats.Tests != before {
		t.Errorf("AC-unchanged swap triggered a re-test")
	}
}

// TestControllerReconfigureRejectsInvalid pins that invalid targets leave
// the controller untouched.
func TestControllerReconfigureRejectsInvalid(t *testing.T) {
	from := Config{AC: StrategyPerTask, IR: StrategyPerTask, LB: StrategyNone}
	c := mustController(t, from, 2)
	if _, err := c.Reconfigure(Config{AC: StrategyPerTask, IR: StrategyPerJob, LB: StrategyNone}); err == nil {
		t.Fatal("contradictory target accepted")
	}
	if _, err := c.Reconfigure(Config{}); err == nil {
		t.Fatal("zero target accepted")
	}
	if got := c.Config(); got != from {
		t.Errorf("config disturbed: %s", got)
	}
	if c.Stats.Reconfigs != 0 {
		t.Errorf("rejected targets counted: %+v", c.Stats)
	}
}
