package core

import (
	"testing"
	"time"

	"repro/internal/sched"
)

// TestControllerRemoveTask checks that withdrawing a task releases its
// permanent per-task reservation through the ledger's task index and clears
// the per-task decision memory, so the same task name is re-tested afresh.
func TestControllerRemoveTask(t *testing.T) {
	ctrl, err := NewController(Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}, 2)
	if err != nil {
		t.Fatal(err)
	}
	task := &sched.Task{
		ID:       "P1",
		Kind:     sched.Periodic,
		Period:   time.Second,
		Deadline: time.Second,
		Subtasks: []sched.Subtask{{Index: 0, Exec: 300 * time.Millisecond, Processor: 0}},
	}
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := ctrl.Arrive(task, 0, 0); !d.Accept || !d.Reserved {
		t.Fatalf("first arrival decision = %+v, want accepted reservation", d)
	}
	if got := ctrl.Ledger().Util(0); got == 0 {
		t.Fatal("reservation left no utilization on processor 0")
	}
	// Deadline expiry must not release the permanent reservation.
	if n := ctrl.ExpireJob(sched.JobRef{Task: "P1", Job: 0}); n != 0 {
		t.Fatalf("ExpireJob removed %d permanent contributions, want 0", n)
	}

	if n := ctrl.RemoveTask("P1"); n != 1 {
		t.Fatalf("RemoveTask removed %d contributions, want 1", n)
	}
	if got := ctrl.Ledger().Util(0); got != 0 {
		t.Fatalf("utilization %g after removal, want 0", got)
	}
	if ctrl.Stats.TaskRemovals != 1 {
		t.Fatalf("Stats.TaskRemovals = %d, want 1", ctrl.Stats.TaskRemovals)
	}
	if err := ctrl.Ledger().CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The task re-registers as new: its first arrival is tested again.
	if d := ctrl.Arrive(task, 7, 0); !d.Accept || !d.Tested || !d.Reserved {
		t.Fatalf("re-arrival decision = %+v, want a fresh tested reservation", d)
	}
}
