package core

import (
	"sort"
	"time"

	"repro/internal/sched"
)

// KindMetrics aggregates per-task-kind job accounting.
type KindMetrics struct {
	// Arrived counts job arrivals at task effectors.
	Arrived int64
	// Released counts jobs released for execution (accepted).
	Released int64
	// Skipped counts jobs not released: rejected by the admission test or
	// belonging to a rejected per-task periodic task.
	Skipped int64
	// Completed counts jobs whose last subtask finished.
	Completed int64
	// Missed counts completed jobs whose response time exceeded the
	// end-to-end deadline.
	Missed int64
	// ArrivedUtil and ReleasedUtil accumulate per-job synthetic utilization
	// (Σ C/D over stages) over arrived and released jobs; their quotient is
	// the paper's accepted utilization ratio.
	ArrivedUtil  float64
	ReleasedUtil float64
	// TotalResponse and MaxResponse aggregate response times of completed
	// jobs.
	TotalResponse time.Duration
	MaxResponse   time.Duration
}

// Metrics is the experiment-facing accounting kept by a simulation run. The
// headline metric is the accepted utilization ratio: "the total utilization
// of jobs actually released divided by the total utilization of all jobs
// arriving" (Section 7.1).
type Metrics struct {
	// Total aggregates over all jobs; Periodic and Aperiodic split by kind.
	Total     KindMetrics
	Periodic  KindMetrics
	Aperiodic KindMetrics

	// perTask accumulates per-task buckets, created lazily.
	perTask map[string]*KindMetrics
}

// kind returns the per-kind bucket.
func (m *Metrics) kind(k sched.TaskKind) *KindMetrics {
	if k == sched.Periodic {
		return &m.Periodic
	}
	return &m.Aperiodic
}

// buckets returns every bucket a task's jobs account into.
func (m *Metrics) buckets(t *sched.Task) [3]*KindMetrics {
	if m.perTask == nil {
		m.perTask = make(map[string]*KindMetrics)
	}
	b, ok := m.perTask[t.ID]
	if !ok {
		b = &KindMetrics{}
		m.perTask[t.ID] = b
	}
	return [3]*KindMetrics{&m.Total, m.kind(t.Kind), b}
}

// Task returns the accounting for one task (zero value if it never
// arrived). The returned copy is safe to retain.
func (m *Metrics) Task(id string) KindMetrics {
	if b, ok := m.perTask[id]; ok {
		return *b
	}
	return KindMetrics{}
}

// TaskIDs lists tasks with recorded activity.
func (m *Metrics) TaskIDs() []string {
	out := make([]string, 0, len(m.perTask))
	for id := range m.perTask {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// MetricAcc is a cached per-task accumulator: the three buckets a task's
// jobs account into plus the task's per-job constants, so the simulation's
// hot path skips the map lookups behind JobArrived/JobReleased/JobSkipped/
// JobCompleted. The recorded values are identical to the per-call entry
// points (the utilization is the same deterministic float sum, computed
// once).
type MetricAcc struct {
	buckets  [3]*KindMetrics
	util     float64
	deadline time.Duration
}

// Acc returns an accumulator handle for the task, creating its per-task
// bucket. The handle stays valid for the lifetime of the Metrics value.
func (m *Metrics) Acc(t *sched.Task) *MetricAcc {
	return &MetricAcc{buckets: m.buckets(t), util: t.TotalUtil(), deadline: t.Deadline}
}

// Arrived records a job arrival.
func (a *MetricAcc) Arrived() {
	for _, b := range a.buckets {
		b.Arrived++
		b.ArrivedUtil += a.util
	}
}

// Released records an accepted, released job.
func (a *MetricAcc) Released() {
	for _, b := range a.buckets {
		b.Released++
		b.ReleasedUtil += a.util
	}
}

// Skipped records a job that was not released.
func (a *MetricAcc) Skipped() {
	for _, b := range a.buckets {
		b.Skipped++
	}
}

// Completed records a finished job and its response time.
func (a *MetricAcc) Completed(response time.Duration) {
	missed := response > a.deadline
	for _, b := range a.buckets {
		b.Completed++
		b.TotalResponse += response
		if response > b.MaxResponse {
			b.MaxResponse = response
		}
		if missed {
			b.Missed++
		}
	}
}

// JobArrived records a job arrival.
func (m *Metrics) JobArrived(t *sched.Task) {
	u := t.TotalUtil()
	for _, b := range m.buckets(t) {
		b.Arrived++
		b.ArrivedUtil += u
	}
}

// JobReleased records an accepted, released job.
func (m *Metrics) JobReleased(t *sched.Task) {
	u := t.TotalUtil()
	for _, b := range m.buckets(t) {
		b.Released++
		b.ReleasedUtil += u
	}
}

// JobSkipped records a job that was not released.
func (m *Metrics) JobSkipped(t *sched.Task) {
	for _, b := range m.buckets(t) {
		b.Skipped++
	}
}

// JobCompleted records a finished job and its response time.
func (m *Metrics) JobCompleted(t *sched.Task, response time.Duration) {
	missed := response > t.Deadline
	for _, b := range m.buckets(t) {
		b.Completed++
		b.TotalResponse += response
		if response > b.MaxResponse {
			b.MaxResponse = response
		}
		if missed {
			b.Missed++
		}
	}
}

// AcceptedUtilizationRatio returns released/arrived utilization over all
// jobs, the paper's Figure 5/6 metric. It returns zero when nothing arrived.
func (m *Metrics) AcceptedUtilizationRatio() float64 {
	if m.Total.ArrivedUtil == 0 {
		return 0
	}
	return m.Total.ReleasedUtil / m.Total.ArrivedUtil
}

// MeanResponse returns the mean response time of completed jobs, or zero.
func (k *KindMetrics) MeanResponse() time.Duration {
	if k.Completed == 0 {
		return 0
	}
	return k.TotalResponse / time.Duration(k.Completed)
}

// MissRatio returns the fraction of completed jobs that missed their
// end-to-end deadline, or zero.
func (k *KindMetrics) MissRatio() float64 {
	if k.Completed == 0 {
		return 0
	}
	return float64(k.Missed) / float64(k.Completed)
}
