package core

import "testing"

func TestStrategyString(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{StrategyNone, "N"},
		{StrategyPerTask, "T"},
		{StrategyPerJob, "J"},
		{Strategy(0), "Strategy(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	tests := []struct {
		in      string
		want    Strategy
		wantErr bool
	}{
		{in: "N", want: StrategyNone},
		{in: "none", want: StrategyNone},
		{in: " t ", want: StrategyPerTask},
		{in: "per-task", want: StrategyPerTask},
		{in: "PT", want: StrategyPerTask},
		{in: "J", want: StrategyPerJob},
		{in: "per-job", want: StrategyPerJob},
		{in: "PJ", want: StrategyPerJob},
		{in: "x", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseStrategy(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseStrategy(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseStrategy(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "T_N_N", cfg: Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}},
		{name: "J_J_J", cfg: Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyPerJob}},
		{name: "AC none", cfg: Config{AC: StrategyNone, IR: StrategyNone, LB: StrategyNone}, wantErr: true},
		{name: "AC zero", cfg: Config{IR: StrategyNone, LB: StrategyNone}, wantErr: true},
		{name: "IR zero", cfg: Config{AC: StrategyPerTask, LB: StrategyNone}, wantErr: true},
		{name: "LB zero", cfg: Config{AC: StrategyPerTask, IR: StrategyNone}, wantErr: true},
		{
			name:    "contradictory T_J_N",
			cfg:     Config{AC: StrategyPerTask, IR: StrategyPerJob, LB: StrategyNone},
			wantErr: true,
		},
		{
			name:    "contradictory T_J_T",
			cfg:     Config{AC: StrategyPerTask, IR: StrategyPerJob, LB: StrategyPerTask},
			wantErr: true,
		},
		{
			name:    "contradictory T_J_J",
			cfg:     Config{AC: StrategyPerTask, IR: StrategyPerJob, LB: StrategyPerJob},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParseConfig(t *testing.T) {
	c, err := ParseConfig("J_T_N")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{AC: StrategyPerJob, IR: StrategyPerTask, LB: StrategyNone}
	if c != want {
		t.Errorf("ParseConfig(J_T_N) = %+v, want %+v", c, want)
	}
	if c.String() != "J_T_N" {
		t.Errorf("String() = %q, want J_T_N", c.String())
	}
	for _, bad := range []string{"", "J_T", "J_T_N_X", "X_T_N", "J_X_N", "J_T_X", "T_J_N", "N_N_N"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", bad)
		}
	}
}

func TestAllCombinations(t *testing.T) {
	combos := AllCombinations()
	// 2 AC × 3 IR × 3 LB = 18, minus the 3 contradictory T_J_* tuples = 15,
	// per Section 4.5.
	if len(combos) != 15 {
		t.Fatalf("AllCombinations() returned %d combos, want 15", len(combos))
	}
	seen := make(map[string]bool, len(combos))
	for _, c := range combos {
		if err := c.Validate(); err != nil {
			t.Errorf("combo %s invalid: %v", c, err)
		}
		if seen[c.String()] {
			t.Errorf("duplicate combo %s", c)
		}
		seen[c.String()] = true
	}
	// The paper's figure order: all T_* first, starting with T_N_N and
	// ending with J_J_J.
	if combos[0].String() != "T_N_N" {
		t.Errorf("first combo = %s, want T_N_N", combos[0])
	}
	if combos[len(combos)-1].String() != "J_J_J" {
		t.Errorf("last combo = %s, want J_J_J", combos[len(combos)-1])
	}
	for _, name := range []string{"T_J_N", "T_J_T", "T_J_J"} {
		if seen[name] {
			t.Errorf("invalid combo %s present in AllCombinations", name)
		}
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	for _, c := range AllCombinations() {
		got, err := ParseConfig(c.String())
		if err != nil {
			t.Errorf("round trip %s: %v", c, err)
			continue
		}
		if got != c {
			t.Errorf("round trip %s = %s", c, got)
		}
	}
}
