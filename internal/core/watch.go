package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// WatchKind labels one lifecycle transition delivered on a watch stream.
type WatchKind int32

// Watch event kinds. Admitted/Rejected are admission outcomes, Completed and
// DeadlineMiss are execution outcomes, TaskAdded/TaskRemoved are structural
// task-set changes, and Reconfigured marks a completed strategy swap.
const (
	// WatchAdmitted fires when a job is released for execution (an accepted
	// admission decision, or the per-task cached fast path).
	WatchAdmitted WatchKind = iota + 1
	// WatchRejected fires when a job is skipped: the admission test rejected
	// it, its task's cached per-task decision was a rejection, or its task was
	// removed while the job awaited a decision.
	WatchRejected
	// WatchCompleted fires when a job's last subjob finishes.
	WatchCompleted
	// WatchDeadlineMiss fires alongside WatchCompleted when the job's
	// end-to-end response time exceeded its deadline.
	WatchDeadlineMiss
	// WatchTaskAdded fires when AddTasks registers a task on the running
	// binding.
	WatchTaskAdded
	// WatchTaskRemoved fires when RemoveTasks withdraws a task.
	WatchTaskRemoved
	// WatchReconfigured fires when a strategy swap completes (the epoch
	// advanced).
	WatchReconfigured
	// WatchNodeDown fires when the failure detector declares a node dead
	// (live binding only). Task carries the node name; Job is -1.
	WatchNodeDown
	// WatchNodeRecovered fires when a previously dead node rejoins the
	// cluster as standby capacity. Task carries the node name; Job is -1.
	WatchNodeRecovered
)

// String returns the lowercase event name.
func (k WatchKind) String() string {
	switch k {
	case WatchAdmitted:
		return "admitted"
	case WatchRejected:
		return "rejected"
	case WatchCompleted:
		return "completed"
	case WatchDeadlineMiss:
		return "deadline-miss"
	case WatchTaskAdded:
		return "task-added"
	case WatchTaskRemoved:
		return "task-removed"
	case WatchReconfigured:
		return "reconfigured"
	case WatchNodeDown:
		return "node-down"
	case WatchNodeRecovered:
		return "node-recovered"
	default:
		return fmt.Sprintf("WatchKind(%d)", int32(k))
	}
}

// WatchEvent is one typed lifecycle event on a watch stream.
type WatchEvent struct {
	// Seq is the binding-wide emission sequence number: every stream observes
	// its delivered events in strictly increasing Seq order, and two events
	// share a Seq only if they are the same event.
	Seq int64
	// Kind is the transition type.
	Kind WatchKind
	// Task names the task; Job is the release number for job-level kinds
	// (Admitted, Rejected, Completed, DeadlineMiss) and -1 otherwise.
	Task string
	Job  int64
	// At is the binding's time at emission: virtual time on the simulation
	// binding, wall-clock UnixNano (as a Duration since the epoch) on the
	// live binding.
	At time.Duration
	// Placement is the admitted job's stage assignment (Admitted only).
	// Callers must treat it as read-only.
	Placement []sched.PlacedStage
	// Response is the end-to-end response time (Completed, DeadlineMiss).
	Response time.Duration
	// Config and Epoch describe the configuration entered by a Reconfigured
	// event; Epoch is also stamped on every other kind so consumers can
	// attribute events to configuration eras.
	Config Config
	Epoch  int64
}

// WatchOptions filters and sizes a watch subscription.
type WatchOptions struct {
	// Kinds selects the event kinds to deliver; nil or empty delivers all.
	Kinds []WatchKind
	// Buffer is the stream's queue depth (default 1024). When the consumer
	// falls behind and the buffer fills, new events are dropped (counted by
	// Dropped) rather than blocking the binding: the watch stream is an
	// observation plane, never a brake on the middleware.
	Buffer int
}

// DefaultWatchBuffer is the stream queue depth when WatchOptions.Buffer is
// unset.
const DefaultWatchBuffer = 1024

// WatchStream is one ordered subscription of lifecycle events. Events arrive
// on Events() in strictly increasing Seq order; the channel closes when the
// stream is cancelled or the binding stops.
type WatchStream struct {
	hub     *WatchHub
	kinds   uint32 // bitmask over WatchKind; 0 = all
	ch      chan WatchEvent
	dropped atomic.Int64
	closed  bool // guarded by hub.mu
}

// Events returns the stream's delivery channel. It is closed by Cancel and by
// the binding's Stop, so consumers can range over it.
func (w *WatchStream) Events() <-chan WatchEvent { return w.ch }

// Dropped reports how many events this stream discarded because its buffer
// was full.
func (w *WatchStream) Dropped() int64 { return w.dropped.Load() }

// Cancel detaches the stream and closes its channel. Safe to call twice.
func (w *WatchStream) Cancel() { w.hub.cancel(w) }

// wants reports whether the stream's kind filter matches.
func (w *WatchStream) wants(k WatchKind) bool {
	return w.kinds == 0 || w.kinds&(1<<uint32(k)) != 0
}

// WatchHub is the shared fan-out behind both bindings' Watch implementation:
// it assigns the binding-wide sequence numbers and delivers each event to
// every matching stream under one lock, which is what makes per-stream
// delivery totally ordered. Emission with no subscribers is a single atomic
// load, so an unwatched binding pays nothing on its hot path.
type WatchHub struct {
	mu      sync.Mutex
	seq     int64
	streams []*WatchStream
	active  atomic.Int32
	// dropped accumulates events dropped across every stream over the hub's
	// lifetime — the binding-wide sensor-loss counter Snapshot exposes.
	dropped atomic.Int64
	// done marks a hub whose binding stopped: later Subscribe calls get an
	// already-closed stream instead of one nothing will ever close (the
	// stopped check and the subscription are not atomic at the bindings).
	done bool
}

// Active reports whether any stream is subscribed; producers use it to skip
// event construction entirely when nobody is watching.
func (h *WatchHub) Active() bool { return h.active.Load() > 0 }

// Dropped returns the total events dropped across all streams (past and
// present) because a subscriber's buffer was full.
func (h *WatchHub) Dropped() int64 { return h.dropped.Load() }

// Subscribe attaches a new stream.
func (h *WatchHub) Subscribe(opts WatchOptions) *WatchStream {
	buf := opts.Buffer
	if buf <= 0 {
		buf = DefaultWatchBuffer
	}
	var mask uint32
	for _, k := range opts.Kinds {
		mask |= 1 << uint32(k)
	}
	w := &WatchStream{hub: h, kinds: mask, ch: make(chan WatchEvent, buf)}
	h.mu.Lock()
	if h.done {
		w.closed = true
		close(w.ch)
		h.mu.Unlock()
		return w
	}
	h.streams = append(h.streams, w)
	h.active.Store(int32(len(h.streams)))
	h.mu.Unlock()
	return w
}

// Emit stamps the event with the next sequence number and delivers it to
// every matching stream, dropping (and counting) on full buffers.
func (h *WatchHub) Emit(ev WatchEvent) {
	if !h.Active() {
		return
	}
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	for _, w := range h.streams {
		if !w.wants(ev.Kind) {
			continue
		}
		select {
		case w.ch <- ev:
		default:
			w.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// cancel detaches one stream and closes its channel.
func (h *WatchHub) cancel(w *WatchStream) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for i, other := range h.streams {
		if other == w {
			h.streams = append(h.streams[:i], h.streams[i+1:]...)
			break
		}
	}
	h.active.Store(int32(len(h.streams)))
	close(w.ch)
}

// CloseAll cancels every stream and marks the hub done (the binding's Stop
// path); streams subscribed afterwards arrive already closed.
func (h *WatchHub) CloseAll() {
	h.mu.Lock()
	streams := h.streams
	h.streams = nil
	h.active.Store(0)
	h.done = true
	for _, w := range streams {
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
	}
	h.mu.Unlock()
}
