package core

import (
	"sync"
	"time"
)

// OpStats accumulates observed durations of one middleware operation, for
// the overhead accounting of Figures 7 and 8.
type OpStats struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	max   time.Duration
}

// Add records one observation.
func (s *OpStats) Add(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.total += d
	if d > s.max {
		s.max = d
	}
}

// Count returns the number of observations.
func (s *OpStats) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Mean returns the mean observed duration, or zero without observations.
func (s *OpStats) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.total / time.Duration(s.count)
}

// Max returns the maximum observed duration.
func (s *OpStats) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Timing holds the controller-side operation timings, corresponding to the
// numbered operations of Figure 7: Location is operation 3 (generate an
// acceptable deployment plan), Test is operation 4 (apply the admission
// test), and Reset is operation 8 (update synthetic utilization on an idle
// resetting event).
type Timing struct {
	// Location times the load balancer's placement computation.
	Location OpStats
	// Test times the AUB admission test.
	Test OpStats
	// Reset times ledger updates from idle-resetting reports.
	Reset OpStats
}

// EnableTiming turns on real-clock measurement of controller operations.
// Simulation runs leave it off to keep virtual time pure.
func (c *Controller) EnableTiming() { c.timing = &Timing{} }

// Timing returns the measured operation statistics, or nil if timing was
// never enabled.
func (c *Controller) Timing() *Timing { return c.timing }
