package core

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func TestIdleResetterNone(t *testing.T) {
	ir := NewIdleResetter(StrategyNone, 0)
	ir.Complete(sched.JobRef{Task: "a", Job: 0}, 0, sched.Aperiodic, time.Second)
	if ir.PendingCount() != 0 {
		t.Error("StrategyNone recorded a completion")
	}
	if got := ir.Report(0); got != nil {
		t.Errorf("Report = %v, want nil", got)
	}
}

func TestIdleResetterPerTaskFiltersPeriodic(t *testing.T) {
	ir := NewIdleResetter(StrategyPerTask, 2)
	ir.Complete(sched.JobRef{Task: "a", Job: 0}, 0, sched.Aperiodic, time.Second)
	ir.Complete(sched.JobRef{Task: "p", Job: 0}, 0, sched.Periodic, time.Second)
	if ir.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1 (aperiodic only)", ir.PendingCount())
	}
	got := ir.Report(0)
	if len(got) != 1 || got[0].Ref.Task != "a" || got[0].Proc != 2 {
		t.Errorf("Report = %v, want single aperiodic entry on proc 2", got)
	}
}

func TestIdleResetterPerJobRecordsBoth(t *testing.T) {
	ir := NewIdleResetter(StrategyPerJob, 0)
	ir.Complete(sched.JobRef{Task: "a", Job: 0}, 0, sched.Aperiodic, time.Second)
	ir.Complete(sched.JobRef{Task: "p", Job: 3}, 1, sched.Periodic, time.Second)
	got := ir.Report(0)
	if len(got) != 2 {
		t.Fatalf("Report = %v, want 2 entries", got)
	}
}

func TestIdleResetterReportsOnce(t *testing.T) {
	ir := NewIdleResetter(StrategyPerJob, 0)
	ir.Complete(sched.JobRef{Task: "a", Job: 0}, 0, sched.Aperiodic, time.Second)
	if got := ir.Report(0); len(got) != 1 {
		t.Fatalf("first Report = %v, want 1 entry", got)
	}
	if got := ir.Report(0); got != nil {
		t.Errorf("second Report = %v, want nil (report once)", got)
	}
	if ir.Reports != 1 {
		t.Errorf("Reports = %d, want 1", ir.Reports)
	}
}

func TestIdleResetterDropsExpired(t *testing.T) {
	ir := NewIdleResetter(StrategyPerJob, 0)
	ir.Complete(sched.JobRef{Task: "a", Job: 0}, 0, sched.Aperiodic, 500*time.Millisecond)
	ir.Complete(sched.JobRef{Task: "b", Job: 0}, 0, sched.Aperiodic, 2*time.Second)
	got := ir.Report(time.Second)
	if len(got) != 1 || got[0].Ref.Task != "b" {
		t.Errorf("Report = %v, want only the unexpired entry", got)
	}
	// An all-expired pending set produces no report and does not bump the
	// report counter.
	ir.Complete(sched.JobRef{Task: "c", Job: 0}, 0, sched.Aperiodic, time.Second)
	if got := ir.Report(2 * time.Second); got != nil {
		t.Errorf("Report of expired-only set = %v, want nil", got)
	}
	if ir.Reports != 1 {
		t.Errorf("Reports = %d, want 1", ir.Reports)
	}
}
