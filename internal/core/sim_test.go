package core

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func simCfg(strategies Config, procs int) SimConfig {
	return SimConfig{
		Strategies: strategies,
		NumProcs:   procs,
		Horizon:    30 * time.Second,
		Seed:       1,
	}
}

func mustSim(t *testing.T, cfg SimConfig, tasks []*sched.Task) *SimSystem {
	t.Helper()
	s, err := NewSimSystem(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimValidation(t *testing.T) {
	good := []*sched.Task{periodicTask("p", 0, 10*time.Millisecond, time.Second)}
	if _, err := NewSimSystem(simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 0), good); err == nil {
		t.Error("accepted zero processors")
	}
	dupe := []*sched.Task{
		periodicTask("p", 0, 10*time.Millisecond, time.Second),
		periodicTask("p", 0, 10*time.Millisecond, time.Second),
	}
	if _, err := NewSimSystem(simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1), dupe); err == nil {
		t.Error("accepted duplicate task IDs")
	}
	farProc := []*sched.Task{periodicTask("p", 5, 10*time.Millisecond, time.Second)}
	if _, err := NewSimSystem(simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 2), farProc); err == nil {
		t.Error("accepted out-of-range processor")
	}
	noMean := []*sched.Task{{
		ID: "a", Kind: sched.Aperiodic, Deadline: time.Second,
		Subtasks: []sched.Subtask{{Exec: time.Millisecond}},
	}}
	if _, err := NewSimSystem(simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1), noMean); err == nil {
		t.Error("accepted aperiodic task without mean interarrival")
	}
}

func TestSimSinglePeriodicTaskAllReleased(t *testing.T) {
	// A lone feasible periodic task must have every job accepted, released,
	// and completed within its deadline, under any strategy combination.
	task := &sched.Task{
		ID: "p", Kind: sched.Periodic,
		Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
		Subtasks: []sched.Subtask{
			{Index: 0, Exec: 10 * time.Millisecond, Processor: 0},
			{Index: 1, Exec: 10 * time.Millisecond, Processor: 1},
		},
	}
	for _, combo := range AllCombinations() {
		m := mustSim(t, simCfg(combo, 2), []*sched.Task{task}).Run()
		// 30s horizon at 100ms period: 301 arrivals (t=0 .. t=30s).
		if m.Total.Arrived != 301 {
			t.Fatalf("%s: arrived = %d, want 301", combo, m.Total.Arrived)
		}
		if m.Total.Released != m.Total.Arrived {
			t.Errorf("%s: released %d of %d jobs", combo, m.Total.Released, m.Total.Arrived)
		}
		if m.Total.Completed != m.Total.Arrived {
			t.Errorf("%s: completed %d of %d jobs", combo, m.Total.Completed, m.Total.Arrived)
		}
		if m.Total.Missed != 0 {
			t.Errorf("%s: %d deadline misses", combo, m.Total.Missed)
		}
		if r := m.AcceptedUtilizationRatio(); !within(r, 1) {
			t.Errorf("%s: accepted utilization ratio = %g, want 1", combo, r)
		}
	}
}

func TestSimOverloadCausesSkips(t *testing.T) {
	// Two identical single-stage tasks at 0.45 utilization each on one
	// processor: f(0.9) = 4.95 > 1 so they cannot be admitted together under
	// per-job AC without resetting; some jobs must be skipped.
	mk := func(id string) *sched.Task {
		return periodicTask(id, 0, 450*time.Millisecond, time.Second)
	}
	cfg := simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1)
	m := mustSim(t, cfg, []*sched.Task{mk("p1"), mk("p2")}).Run()
	if m.Total.Skipped == 0 {
		t.Error("overloaded workload had no skipped jobs")
	}
	if m.Total.Released == 0 {
		t.Error("overloaded workload released nothing")
	}
	if r := m.AcceptedUtilizationRatio(); r >= 1 {
		t.Errorf("accepted utilization ratio = %g, want < 1", r)
	}
	if m.Total.Missed != 0 {
		t.Errorf("admitted jobs missed deadlines: %d", m.Total.Missed)
	}
}

func TestSimIdleResettingImprovesAcceptance(t *testing.T) {
	// Two tasks whose arrivals interleave by half a period. Without
	// resetting, the first task's contribution is held until each job's
	// deadline, so the second task always tests against f(0.9) > 1 and is
	// skipped. With IR per job, the first task's subjob completes and its
	// contribution is reset before the second task arrives, so both are
	// admitted — the paper's motivation for the resetting rule.
	mk := func(id string, phase time.Duration) *sched.Task {
		tk := periodicTask(id, 0, 450*time.Millisecond, time.Second)
		tk.Phase = phase
		return tk
	}
	tasks := []*sched.Task{mk("p1", 0), mk("p2", 500*time.Millisecond)}

	noIR := mustSim(t, simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1), tasks).Run()
	withIR := mustSim(t, simCfg(Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyNone}, 1), tasks).Run()

	if got := noIR.AcceptedUtilizationRatio(); got > 0.6 {
		t.Errorf("no-IR ratio = %g, want ~0.5 (second task starved)", got)
	}
	if got := withIR.AcceptedUtilizationRatio(); got < 0.95 {
		t.Errorf("IR-per-job ratio = %g, want ~1 (resetting admits both)", got)
	}
}

func TestSimLoadBalancingUsesReplica(t *testing.T) {
	// Two heavy tasks homed on processor 0, each replicated on processor 1.
	// Without LB they collide; with LB per task one moves to the replica and
	// everything is admitted.
	mk := func(id string) *sched.Task {
		return periodicTask(id, 0, 450*time.Millisecond, time.Second, 1)
	}
	tasks := []*sched.Task{mk("p1"), mk("p2")}

	noLB := mustSim(t, simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 2), tasks).Run()
	withLB := mustSim(t, simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyPerTask}, 2), tasks).Run()

	if r := withLB.AcceptedUtilizationRatio(); !within(r, 1) {
		t.Errorf("LB per task ratio = %g, want 1 (replica absorbs second task)", r)
	}
	if noLB.AcceptedUtilizationRatio() >= withLB.AcceptedUtilizationRatio() {
		t.Errorf("no-LB ratio %g not worse than LB ratio %g",
			noLB.AcceptedUtilizationRatio(), withLB.AcceptedUtilizationRatio())
	}
}

func TestSimAperiodicPoissonDeterminism(t *testing.T) {
	mk := func() []*sched.Task {
		tk := aperiodicTask("a", 0, 50*time.Millisecond, time.Second)
		tk.MeanInterarrival = 300 * time.Millisecond
		return []*sched.Task{tk}
	}
	cfg := simCfg(Config{AC: StrategyPerJob, IR: StrategyPerTask, LB: StrategyNone}, 1)
	m1 := mustSim(t, cfg, mk()).Run()
	m2 := mustSim(t, cfg, mk()).Run()
	if m1.Total != m2.Total {
		t.Errorf("same seed produced different metrics:\n%+v\n%+v", m1.Total, m2.Total)
	}
	if m1.Total.Arrived == 0 {
		t.Error("no aperiodic arrivals generated")
	}
	cfg.Seed = 2
	m3 := mustSim(t, cfg, mk()).Run()
	if m3.Total.Arrived == m1.Total.Arrived && m3.Total.TotalResponse == m1.Total.TotalResponse {
		t.Log("different seed produced identical arrivals (unlikely but possible)")
	}
}

func TestSimPerTaskACSkipsRoundTripAfterDecision(t *testing.T) {
	cfg := simCfg(Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}, 1)
	task := periodicTask("p", 0, 10*time.Millisecond, 100*time.Millisecond)
	s := mustSim(t, cfg, []*sched.Task{task})
	m := s.Run()
	if m.Total.Released != m.Total.Arrived {
		t.Fatalf("released %d of %d", m.Total.Released, m.Total.Arrived)
	}
	// Only one admission test for the whole run.
	if s.Controller().Stats.Tests != 1 {
		t.Errorf("Tests = %d, want 1", s.Controller().Stats.Tests)
	}
}

func TestSimIRPerTaskResetsOnlyAperiodic(t *testing.T) {
	// One periodic and one aperiodic task, both completing well before their
	// deadlines. Under IR per task only the aperiodic contributions are
	// reset; under IR per job both are. The controller's IdleResets counter
	// exposes the difference.
	tasks := []*sched.Task{
		periodicTask("p", 0, 20*time.Millisecond, 500*time.Millisecond),
		aperiodicTask("a", 0, 20*time.Millisecond, 500*time.Millisecond),
	}
	run := func(ir Strategy) int64 {
		cfg := simCfg(Config{AC: StrategyPerJob, IR: ir, LB: StrategyNone}, 1)
		cfg.Horizon = 10 * time.Second
		s := mustSim(t, cfg, tasks)
		s.Run()
		return s.Controller().Stats.IdleResets
	}
	perTask := run(StrategyPerTask)
	perJob := run(StrategyPerJob)
	none := run(StrategyNone)
	if none != 0 {
		t.Errorf("IR none produced %d resets", none)
	}
	if perTask == 0 {
		t.Error("IR per task never reset aperiodic contributions")
	}
	if perJob <= perTask {
		t.Errorf("IR per job resets (%d) not above per-task resets (%d): periodic subjobs not included",
			perJob, perTask)
	}
}

func TestSimPerTaskACWithPerJobLBRelocates(t *testing.T) {
	// An admitted per-task periodic task whose stage is replicated: under
	// LB per job, an aperiodic burst on the home processor pushes later jobs
	// (and the task's reservation) to the replica. The sim must keep the
	// ledger consistent throughout — the AC-per-task/LB-per-job corner the
	// paper leaves implicit.
	p := periodicTask("p", 0, 100*time.Millisecond, 500*time.Millisecond, 1)
	a := aperiodicTask("a", 0, 150*time.Millisecond, 500*time.Millisecond)
	a.MeanInterarrival = 400 * time.Millisecond
	cfg := simCfg(Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyPerJob}, 2)
	cfg.Horizon = 20 * time.Second
	s := mustSim(t, cfg, []*sched.Task{p, a})
	m := s.Run()

	if s.Controller().Stats.Relocations == 0 {
		t.Error("no relocations despite per-job LB and a loaded home processor")
	}
	pm := m.Task("p")
	if pm.Skipped != 0 {
		t.Errorf("admitted per-task periodic task skipped %d jobs", pm.Skipped)
	}
	if pm.Released != pm.Arrived {
		t.Errorf("released %d of %d periodic jobs", pm.Released, pm.Arrived)
	}
	if err := s.Controller().Ledger().CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The permanent reservation lives on exactly one placement: total
	// utilization across both processors equals the task's stage utilization
	// (0.2) regardless of where the last relocation put it.
	utils := s.Controller().Ledger().Utils()
	total := utils[0] + utils[1]
	if total < 0.19 || total > 0.21 {
		t.Errorf("reservation total = %g across %v, want ~0.2", total, utils)
	}
}

func TestSimEDMSPriorityProtectsShortDeadlines(t *testing.T) {
	// A short-deadline alert shares processor 0 with a long-running
	// low-priority task whose subjobs occupy most of the CPU. Under EDMS the
	// alert preempts and must never miss its deadline, even though the long
	// task alone would block it for 400ms at a time.
	long := &sched.Task{
		ID: "long", Kind: sched.Periodic,
		Period: time.Second, Deadline: time.Second,
		Subtasks: []sched.Subtask{{Index: 0, Exec: 400 * time.Millisecond, Processor: 0}},
	}
	alert := &sched.Task{
		ID: "alert", Kind: sched.Periodic,
		Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
		Phase:    10 * time.Millisecond, // arrives while long runs
		Subtasks: []sched.Subtask{{Index: 0, Exec: 10 * time.Millisecond, Processor: 0}},
	}
	cfg := simCfg(Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyNone}, 1)
	m := mustSim(t, cfg, []*sched.Task{long, alert}).Run()

	a := m.Task("alert")
	if a.Released == 0 {
		t.Fatal("no alert jobs released")
	}
	if a.Missed != 0 {
		t.Errorf("alert missed %d of %d deadlines despite EDMS priority", a.Missed, a.Completed)
	}
	// The alert's response time stays near its execution time (plus the
	// admission round trip), far below the long task's 400ms subjobs: proof
	// that preemption, not FIFO, ordered the processor.
	if mean := a.MeanResponse(); mean > 50*time.Millisecond {
		t.Errorf("alert mean response %v, want preemptive latency well under 50ms", mean)
	}
}

func TestSimMixedWorkloadInvariants(t *testing.T) {
	tasks := []*sched.Task{
		periodicTask("p1", 0, 50*time.Millisecond, 500*time.Millisecond, 1),
		periodicTask("p2", 1, 100*time.Millisecond, time.Second, 0),
		aperiodicTask("a1", 0, 80*time.Millisecond, 800*time.Millisecond, 1),
		aperiodicTask("a2", 1, 60*time.Millisecond, 600*time.Millisecond),
	}
	for _, combo := range AllCombinations() {
		s := mustSim(t, simCfg(combo, 2), tasks)
		m := s.Run()
		if m.Total.Arrived == 0 {
			t.Fatalf("%s: no arrivals", combo)
		}
		if m.Total.Released+m.Total.Skipped != m.Total.Arrived {
			t.Errorf("%s: released %d + skipped %d != arrived %d",
				combo, m.Total.Released, m.Total.Skipped, m.Total.Arrived)
		}
		if m.Total.Completed > m.Total.Released {
			t.Errorf("%s: completed %d > released %d", combo, m.Total.Completed, m.Total.Released)
		}
		// All released jobs finish within the drain window.
		if m.Total.Completed != m.Total.Released {
			t.Errorf("%s: %d released jobs never completed", combo, m.Total.Released-m.Total.Completed)
		}
		if r := m.AcceptedUtilizationRatio(); r < 0 || r > 1 {
			t.Errorf("%s: ratio %g out of range", combo, r)
		}
		if err := s.Controller().Ledger().CheckInvariants(); err != nil {
			t.Errorf("%s: %v", combo, err)
		}
		if m.Periodic.Arrived+m.Aperiodic.Arrived != m.Total.Arrived {
			t.Errorf("%s: kind split does not sum", combo)
		}
	}
}
