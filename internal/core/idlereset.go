package core

import (
	"time"

	"repro/internal/sched"
)

// IdleResetter is the per-processor IR component's bookkeeping: it records
// subjob completions reported by the local F/I and Last Subtask components
// and, when the processor goes idle, produces the "Idle Resetting" report
// for the admission controller.
//
// Per Section 4.3, the idle detector "only reports when there is a newly
// completed ... subjob whose deadline has not expired": reported entries are
// forgotten so they are never reported twice, and expired entries are
// dropped (their contribution is removed by deadline expiry on the AC side
// anyway).
//
// IdleResetter is not safe for concurrent use; each binding confines one
// instance to its processor's execution context.
type IdleResetter struct {
	strategy Strategy
	proc     int
	pending  []completion

	// Reports counts idle-resetting reports produced (non-empty only).
	Reports int64
}

// completion is one locally recorded completed subjob.
type completion struct {
	ref      sched.JobRef
	stage    int
	kind     sched.TaskKind
	deadline time.Duration // absolute virtual deadline
}

// NewIdleResetter returns an IR component for the given processor using the
// given strategy. With StrategyNone, Complete and Report do nothing.
func NewIdleResetter(strategy Strategy, proc int) *IdleResetter {
	return &IdleResetter{strategy: strategy, proc: proc}
}

// Strategy returns the resetter's configured strategy.
func (ir *IdleResetter) Strategy() Strategy { return ir.strategy }

// SetStrategy hot-swaps the resetting rule during a reconfiguration. The
// pending set is refiltered under the new rule so the next Report never
// leaks a completion the new strategy would not have recorded: switching to
// per-task drops pending periodic subjobs, switching to none drops
// everything.
func (ir *IdleResetter) SetStrategy(s Strategy) {
	if s == ir.strategy {
		return
	}
	ir.strategy = s
	switch s {
	case StrategyNone:
		ir.pending = ir.pending[:0]
	case StrategyPerTask:
		kept := ir.pending[:0]
		for _, c := range ir.pending {
			if c.kind == sched.Aperiodic {
				kept = append(kept, c)
			}
		}
		ir.pending = kept
	case StrategyPerJob:
		// Everything already pending stays reportable.
	}
}

// Complete records a subjob completion from a local subtask component. Under
// StrategyNone nothing is recorded. Under StrategyPerTask only aperiodic
// subjobs are recorded ("the idle resetting component is notified when
// aperiodic subjobs complete"); under StrategyPerJob both kinds are.
func (ir *IdleResetter) Complete(ref sched.JobRef, stage int, kind sched.TaskKind, deadline time.Duration) {
	switch ir.strategy {
	case StrategyNone:
		return
	case StrategyPerTask:
		if kind != sched.Aperiodic {
			return
		}
	case StrategyPerJob:
		// Record everything.
	}
	ir.pending = append(ir.pending, completion{ref: ref, stage: stage, kind: kind, deadline: deadline})
}

// Report returns the entries to push to the admission controller now that
// the processor is idle, dropping entries whose deadlines already expired.
// The pending set is cleared: each completion is reported at most once. A
// nil result means there is nothing new to report and no event should be
// pushed.
func (ir *IdleResetter) Report(now time.Duration) []sched.EntryRef {
	return ir.ReportInto(now, nil)
}

// ReportInto is Report appending into a caller-provided buffer, so a binding
// that recycles report buffers (the simulation's idle-report pool) produces
// reports without allocating. Semantics are identical to Report: buf is
// returned unchanged when there is nothing pending, and the Reports counter
// only advances when entries were produced.
func (ir *IdleResetter) ReportInto(now time.Duration, buf []sched.EntryRef) []sched.EntryRef {
	if len(ir.pending) == 0 {
		return buf
	}
	out := buf
	for _, c := range ir.pending {
		if c.deadline <= now {
			continue
		}
		out = append(out, sched.EntryRef{Ref: c.ref, Stage: c.stage, Proc: ir.proc})
	}
	ir.pending = ir.pending[:0]
	if len(out) > len(buf) {
		ir.Reports++
	}
	return out
}

// PendingCount returns the number of completions waiting to be reported.
func (ir *IdleResetter) PendingCount() int { return len(ir.pending) }
