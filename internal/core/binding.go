package core

import (
	"time"

	"repro/internal/sched"
)

// This file holds the types shared by the unified Binding API: both the
// deterministic simulation (SimSystem) and the live cluster binding
// (internal/cluster.Cluster) expose Submit/Snapshot/Reconfigure/Stop over
// these structures, so tools and experiments can drive either binding
// through one surface (the rtmw.Binding interface re-exports them).

// BindingSnapshot is a point-in-time view of a running binding.
type BindingSnapshot struct {
	// Config is the currently active AC/IR/LB strategy combination.
	Config Config
	// Epoch counts completed reconfigurations: 0 for the initial
	// configuration, incremented atomically at each strategy swap.
	Epoch int64
	// Arrived, Released, Skipped and Completed aggregate job counts over the
	// binding's lifetime (all epochs).
	Arrived   int64
	Released  int64
	Skipped   int64
	Completed int64
	// InFlight is the number of released jobs not yet completed.
	InFlight int64
	// WatchDropped is the total watch events dropped across all
	// subscriptions because a consumer's buffer was full — visible sensor
	// loss without needing a live subscription of one's own.
	WatchDropped int64
	// Shed counts arrivals refused by explicit transport backpressure
	// before reaching admission control (always zero in the simulation,
	// whose channels never shed).
	Shed int64
}

// AdmissionOutcome is the resolution state of one submitted arrival.
type AdmissionOutcome int32

// Admission outcomes. The middleware decides admission through an
// asynchronous "Task Arrive" → "Accept" event round trip, so most
// submissions are Pending at return; per-task cached decisions resolve
// synchronously. The terminal outcome for a pending submission arrives on
// the binding's watch stream (WatchAdmitted / WatchRejected).
const (
	// AdmissionPending means the decision round trip is in flight (or the
	// arrival was deferred by a reconfiguration quiesce).
	AdmissionPending AdmissionOutcome = iota + 1
	// AdmissionAccepted means the job was released, with Placement assigned.
	AdmissionAccepted
	// AdmissionRejected means the job was skipped.
	AdmissionRejected
)

// String returns the lowercase outcome name.
func (o AdmissionOutcome) String() string {
	switch o {
	case AdmissionPending:
		return "pending"
	case AdmissionAccepted:
		return "accepted"
	case AdmissionRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Admission is the typed outcome of one Submit: which job number the arrival
// was assigned and how far its admission has resolved. It replaces the bare
// job index the closed-world API returned, making the admission verdict a
// first-class result instead of something recovered from polled snapshots.
type Admission struct {
	// Task and Job identify the arrival.
	Task string
	Job  int64
	// Outcome is the resolution state at return time.
	Outcome AdmissionOutcome
	// Reason explains a rejection or why the outcome is still pending.
	Reason string
	// Placement is the stage assignment of a synchronously accepted job
	// (per-task cached decisions). Callers must treat it as read-only.
	Placement []sched.PlacedStage
}

// ReconfigReport describes one completed reconfiguration transaction: the
// epoch-versioned two-phase quiesce → swap → resume protocol both bindings
// implement.
type ReconfigReport struct {
	// From and To are the strategy combinations before and after the swap.
	From, To Config
	// Epoch is the epoch entered by the swap (the Accept events decided
	// after it carry this stamp).
	Epoch int64
	// At is the virtual time of the swap (simulation binding only).
	At time.Duration
	// Quiesce is how long admission was quiesced: the window during which
	// new arrivals were deferred while in-flight decisions drained. Virtual
	// time in the simulation binding, wall-clock in the live binding.
	Quiesce time.Duration
	// Deferred is the number of arrivals queued during the quiesce and
	// replayed — and decided — under the new configuration.
	Deferred int64
	// InFlightBefore and InFlightAfter count released-but-uncompleted jobs
	// on both sides of the swap; the protocol preserves them all.
	InFlightBefore, InFlightAfter int64
	// ReservationsReleased is the number of ledger contributions withdrawn
	// by the reservation rebase (AC leaving per-task).
	ReservationsReleased int
	// NodeTimings records the per-node component swap durations of the live
	// protocol, keyed by node name (nil in the simulation binding).
	NodeTimings map[string]time.Duration
}
