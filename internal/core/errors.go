package core

import "errors"

// Sentinel errors shared by the unified Binding API: both bindings wrap these
// with contextual detail (binding, task ID), so callers discriminate failures
// with errors.Is instead of matching message strings — the same style as the
// live binding's reconfiguration sentinels (internal/live.ErrNotConfigured and
// friends).
var (
	// ErrStopped marks an operation on a binding after Stop: the binding no
	// longer accepts arrivals, lifecycle changes or watch subscriptions.
	ErrStopped = errors.New("binding stopped")
	// ErrUnknownTask marks a submission or lifecycle operation naming a task
	// the binding does not currently serve (never registered, or removed).
	ErrUnknownTask = errors.New("unknown task")
	// ErrTaskExists marks an AddTasks call re-registering an ID the binding
	// already serves; remove the old task first if the intent is replacement.
	ErrTaskExists = errors.New("task already registered")
)
