package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/workload"
)

// gk is a golden KindMetrics record with float fields stored as exact IEEE
// 754 bit patterns.
type gk struct {
	arrived, released, skipped, completed, missed int64
	arrivedUtilBits, releasedUtilBits             uint64
	totalResponse, maxResponse                    int64
}

func (g gk) diff(t *testing.T, label string, k KindMetrics) {
	t.Helper()
	if k.Arrived != g.arrived || k.Released != g.released || k.Skipped != g.skipped ||
		k.Completed != g.completed || k.Missed != g.missed {
		t.Errorf("%s: counts {%d %d %d %d %d}, golden {%d %d %d %d %d}",
			label, k.Arrived, k.Released, k.Skipped, k.Completed, k.Missed,
			g.arrived, g.released, g.skipped, g.completed, g.missed)
	}
	if bits := math.Float64bits(k.ArrivedUtil); bits != g.arrivedUtilBits {
		t.Errorf("%s: ArrivedUtil bits 0x%016x, golden 0x%016x", label, bits, g.arrivedUtilBits)
	}
	if bits := math.Float64bits(k.ReleasedUtil); bits != g.releasedUtilBits {
		t.Errorf("%s: ReleasedUtil bits 0x%016x, golden 0x%016x", label, bits, g.releasedUtilBits)
	}
	if int64(k.TotalResponse) != g.totalResponse || int64(k.MaxResponse) != g.maxResponse {
		t.Errorf("%s: responses {%d %d}, golden {%d %d}",
			label, int64(k.TotalResponse), int64(k.MaxResponse), g.totalResponse, g.maxResponse)
	}
}

// goldenMetricsTable holds bit-exact Metrics captured from the seed
// simulation engine (the pre-pool container/heap + closure implementation,
// retained as internal/des reference.go) running one-minute Figure 5/6
// sweeps. The pooled engine must reproduce every field exactly: the typed
// event rewrite preserves (time, seq) event ordering, RNG draw order, and
// float accumulation order byte for byte, so any divergence here is a
// semantics change, not noise.
//
// Note: the float fields assume IEEE-strict evaluation; Go guarantees this
// per platform, and the table was captured on amd64 (the CI architecture).
var goldenMetricsTable = []struct {
	combo                      string
	figure, set                int
	total, periodic, aperiodic gk
}{
	{"J_J_J", 5, 0,
		gk{132, 97, 35, 97, 0, 0x4043316d4e9282e5, 0x403729a05b48aa6d, 116226373131, 4571409121},
		gk{44, 42, 2, 42, 0, 0x402548e3c644d94a, 0x4023cabe6dc16cc2, 75953839934, 4571409121},
		gk{88, 55, 33, 55, 0, 0x403bbe68ba029922, 0x402a888248cfe811, 40272533197, 2223257590}},
	{"J_J_J", 5, 1,
		gk{181, 120, 61, 120, 0, 0x404dcd80ffba129a, 0x4042953cd4ba027a, 110444254316, 3530526556},
		gk{53, 43, 10, 43, 0, 0x402716a0087d7cb5, 0x402180e2f97a9d36, 53198585595, 3223486280},
		gk{128, 77, 51, 77, 0, 0x404807d8fd9ab36b, 0x403c6a082cb6b657, 57245668721, 3530526556}},
	{"J_J_J", 6, 0,
		gk{91, 83, 8, 83, 0, 0x4033171a9ea56619, 0x40309a11741aa220, 109576285244, 5447234585},
		gk{55, 53, 2, 53, 0, 0x4022cc960db3ca7f, 0x4021248b06a52d71, 67685224303, 5447234585},
		gk{36, 30, 6, 30, 0, 0x4023619f2f9701b3, 0x40200f97e19016d2, 41891060941, 1872612073}},
	{"T_T_T", 5, 0,
		gk{132, 56, 76, 56, 0, 0x4043316d4e9282e5, 0x4025040d2e0a78a0, 67280202827, 4905181565},
		gk{44, 37, 7, 37, 0, 0x402548e3c644d94a, 0x4021288b19b4f3b4, 62057152538, 4905181565},
		gk{88, 19, 69, 19, 0, 0x403bbe68ba029922, 0x3ffedc10a2ac274f, 5223050289, 1346322915}},
	{"T_T_T", 5, 1,
		gk{181, 49, 132, 49, 0, 0x404dcd80ffba129a, 0x40258dbdb26d8e67, 48980498714, 1368814805},
		gk{53, 47, 6, 47, 0, 0x402716a0087d7cb5, 0x402417abef0503c9, 47844938243, 1368814805},
		gk{128, 2, 126, 2, 0, 0x404807d8fd9ab36b, 0x3fe7611c3688a9d6, 1135560471, 821749646}},
	{"T_T_T", 6, 0,
		gk{91, 62, 29, 62, 0, 0x4033171a9ea56619, 0x402433f332a30751, 76447577567, 5233154406},
		gk{55, 55, 0, 55, 0, 0x4022cc960db3ca7f, 0x4022cc960db3ca7f, 72309490220, 5233154406},
		gk{36, 7, 29, 7, 0, 0x4023619f2f9701b3, 0x3fe675d24ef3cd2f, 4138087347, 1712648900}},
	{"J_N_N", 5, 0,
		gk{132, 48, 84, 48, 0, 0x4043316d4e9282e5, 0x401d478e4b5b1f6d, 43106358730, 3776668940},
		gk{44, 26, 18, 26, 0, 0x402548e3c644d94a, 0x4012b665966baff4, 35595598532, 3776668940},
		gk{88, 22, 66, 22, 0, 0x403bbe68ba029922, 0x4005225169dededf, 7510760198, 1346322915}},
	{"J_N_N", 5, 1,
		gk{181, 39, 142, 39, 0, 0x404dcd80ffba129a, 0x4022917ed3648132, 38685017491, 1184853559},
		gk{53, 39, 14, 39, 0, 0x402716a0087d7cb5, 0x4022917ed3648132, 38685017491, 1184853559},
		gk{128, 0, 128, 0, 0, 0x404807d8fd9ab36b, 0x0000000000000000, 0, 0}},
	{"J_N_N", 6, 0,
		gk{91, 56, 35, 56, 0, 0x4033171a9ea56619, 0x401873da5475c3ef, 37744841972, 1611294477},
		gk{55, 42, 13, 42, 0, 0x4022cc960db3ca7f, 0x400edf82e01869b0, 22429047709, 1439692056},
		gk{36, 14, 22, 14, 0, 0x4023619f2f9701b3, 0x40020831c8d31e24, 15315794263, 1611294477}},
	{"T_N_J", 5, 0,
		gk{132, 53, 79, 53, 0, 0x4043316d4e9282e5, 0x4024ae8cb02eadde, 59463021883, 3146061775},
		gk{44, 37, 7, 37, 0, 0x402548e3c644d94a, 0x401dec6e0e798e4f, 52107092067, 3146061775},
		gk{88, 16, 72, 16, 0, 0x403bbe68ba029922, 0x4006e156a3c79ad9, 7355929816, 1346322915}},
	{"T_N_J", 5, 1,
		gk{181, 49, 132, 49, 0, 0x404dcd80ffba129a, 0x402e4d55257dc1ac, 47795021703, 2905718938},
		gk{53, 29, 24, 29, 0, 0x402716a0087d7cb5, 0x4020071f20fd7496, 32587964989, 1440818122},
		gk{128, 20, 108, 20, 0, 0x404807d8fd9ab36b, 0x401c8c6c09009a24, 15207056714, 2905718938}},
	{"T_N_J", 6, 0,
		gk{91, 67, 24, 67, 0, 0x4033171a9ea56619, 0x402323c415b8b31d, 61916280405, 3184034251},
		gk{55, 48, 7, 48, 0, 0x4022cc960db3ca7f, 0x40159adfbcb37d14, 38960085441, 3184034251},
		gk{36, 19, 17, 19, 0, 0x4023619f2f9701b3, 0x4010aca86ebde928, 22956194964, 1659253771}},
}

// TestGoldenMetricsBitIdentical runs Figure 5/6 sweeps through the pooled
// simulation core and asserts Metrics bit-identical to the values the seed
// (reference) engine produced for the same seeds — the sim-level half of the
// differential proof (the engine-level half is internal/des's
// TestEngineDifferential).
func TestGoldenMetricsBitIdentical(t *testing.T) {
	for _, g := range goldenMetricsTable {
		cfg, err := ParseConfig(g.combo)
		if err != nil {
			t.Fatal(err)
		}
		var p workload.Params
		if g.figure == 5 {
			p = workload.Figure5Params(g.set)
		} else {
			p = workload.Figure6Params(g.set)
		}
		tasks, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimSystem(SimConfig{
			Strategies: cfg,
			NumProcs:   workload.MaxProc(tasks) + 1,
			Horizon:    time.Minute,
			Seed:       p.Seed ^ 0x5DEECE66D,
		}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.Run()
		label := func(part string) string {
			return g.combo + "/fig" + string(rune('0'+g.figure)) + "/set" + string(rune('0'+g.set)) + "/" + part
		}
		g.total.diff(t, label("total"), m.Total)
		g.periodic.diff(t, label("periodic"), m.Periodic)
		g.aperiodic.diff(t, label("aperiodic"), m.Aperiodic)
	}
}
