package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/sched"
)

// SimConfig parameterizes a simulated run of the middleware over a workload.
type SimConfig struct {
	// Strategies selects the AC/IR/LB combination under test.
	Strategies Config
	// NumProcs is the number of application processors. The task manager
	// (AC + LB) is a separate node, as in the paper's testbed.
	NumProcs int
	// LinkDelay is the one-way event/invocation delay between nodes. It
	// defaults to 322 µs, the mean one-way delay the paper measured on its
	// 100 Mbps switch (Figure 8).
	LinkDelay time.Duration
	// ACDelay is the task-manager-side processing time per admission
	// decision (the admission test plus, when enabled, the load balancer's
	// Location call). It defaults to 150 µs, consistent with the paper's
	// sub-millisecond AC-side operation costs.
	ACDelay time.Duration
	// Horizon is the workload duration; arrivals stop at the horizon and the
	// run drains in-flight jobs afterwards. Defaults to 5 minutes, the
	// paper's experiment length.
	Horizon time.Duration
	// Seed drives aperiodic interarrival sampling. Runs with equal seeds and
	// workloads are bit-identical.
	Seed int64
	// Trace records per-job lifecycle events (see Trace); off by default.
	Trace bool
}

// withDefaults fills unset fields.
func (c SimConfig) withDefaults() SimConfig {
	if c.LinkDelay == 0 {
		c.LinkDelay = 322 * time.Microsecond
	}
	if c.ACDelay == 0 {
		c.ACDelay = 150 * time.Microsecond
	}
	if c.Horizon == 0 {
		c.Horizon = 5 * time.Minute
	}
	return c
}

// teState is the task effector's per-task memory on the arrival processor:
// under per-task admission control it caches the decision so subsequent jobs
// of an admitted periodic task are released immediately without a round trip
// (the TE component's "Per-task" attribute).
type teState struct {
	decided   bool
	accept    bool
	placement []sched.PlacedStage
	waiting   []pendingJob
	requested bool
}

// pendingJob is a job held in the task effector's waiting queue.
type pendingJob struct {
	job     int64
	arrival time.Duration
}

// SimSystem wires the configurable components onto the discrete-event
// substrate: one simulated processor per application node, an IR component
// and task-effector state per node, and the centralized AC+LB controller on
// the task manager node.
type SimSystem struct {
	cfg     SimConfig
	eng     *des.Engine
	procs   []*des.Processor
	irs     []*IdleResetter
	links   *des.Link
	ctrl    *Controller
	rng     *rand.Rand
	tasks   []*sched.Task
	te      map[string]*teState
	metrics Metrics
	nextJob map[string]int64
	trace   []TraceEvent
}

// NewSimSystem builds a simulation over the given tasks. Tasks are cloned;
// EDMS priorities are assigned from end-to-end deadlines. Every referenced
// processor must be within [0, NumProcs).
func NewSimSystem(cfg SimConfig, tasks []*sched.Task) (*SimSystem, error) {
	cfg = cfg.withDefaults()
	if cfg.NumProcs <= 0 {
		return nil, fmt.Errorf("core: sim needs at least one application processor")
	}
	ctrl, err := NewController(cfg.Strategies, cfg.NumProcs)
	if err != nil {
		return nil, err
	}
	cloned := make([]*sched.Task, len(tasks))
	seen := make(map[string]bool, len(tasks))
	for i, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("core: duplicate task ID %q", t.ID)
		}
		seen[t.ID] = true
		for _, st := range t.Subtasks {
			for _, p := range st.Candidates() {
				if p >= cfg.NumProcs {
					return nil, fmt.Errorf("core: task %s references processor %d but sim has %d", t.ID, p, cfg.NumProcs)
				}
			}
		}
		if t.Kind == sched.Aperiodic && t.MeanInterarrival <= 0 {
			return nil, fmt.Errorf("core: aperiodic task %s has no mean interarrival time", t.ID)
		}
		cloned[i] = t.Clone()
	}
	sched.AssignEDMSPriorities(cloned)

	eng := des.NewEngine()
	s := &SimSystem{
		cfg:     cfg,
		eng:     eng,
		ctrl:    ctrl,
		links:   des.NewLink(eng, cfg.LinkDelay),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		tasks:   cloned,
		te:      make(map[string]*teState),
		nextJob: make(map[string]int64),
	}
	s.procs = make([]*des.Processor, cfg.NumProcs)
	s.irs = make([]*IdleResetter, cfg.NumProcs)
	for i := 0; i < cfg.NumProcs; i++ {
		s.procs[i] = des.NewProcessor(eng, i)
		s.irs[i] = NewIdleResetter(cfg.Strategies.IR, i)
		if cfg.Strategies.IR != StrategyNone {
			i := i
			s.procs[i].SetIdleCallback(func() { s.reportIdle(i) })
		}
	}
	return s, nil
}

// Metrics returns the run's accounting. Valid after Run.
func (s *SimSystem) Metrics() *Metrics { return &s.metrics }

// Controller exposes the AC+LB policy object for instrumentation.
func (s *SimSystem) Controller() *Controller { return s.ctrl }

// Engine exposes the simulation engine (tests use it for clock access).
func (s *SimSystem) Engine() *des.Engine { return s.eng }

// Run executes the workload: arrivals from time zero to the horizon, then a
// drain window long enough for every in-flight job to finish or expire.
// After the drain it audits the admission ledger's indexes (CheckInvariants),
// so every simulated experiment doubles as an index-consistency test; an
// inconsistent ledger is a programming bug and panics loudly.
func (s *SimSystem) Run() *Metrics {
	var maxDeadline time.Duration
	for _, t := range s.tasks {
		if t.Deadline > maxDeadline {
			maxDeadline = t.Deadline
		}
		s.scheduleFirstArrival(t)
	}
	s.eng.RunUntil(s.cfg.Horizon + 2*maxDeadline + time.Second)
	if err := s.ctrl.Ledger().CheckInvariants(); err != nil {
		panic(fmt.Sprintf("core: ledger inconsistent after run: %v", err))
	}
	return &s.metrics
}

// scheduleFirstArrival schedules the first job arrival for a task.
func (s *SimSystem) scheduleFirstArrival(t *sched.Task) {
	at := t.Phase
	if t.Kind == sched.Aperiodic {
		at += s.exp(t.MeanInterarrival)
	}
	if at > s.cfg.Horizon {
		return
	}
	s.eng.At(at, func() { s.arrive(t) })
}

// exp samples an exponential interarrival with the given mean (Poisson
// arrival process).
func (s *SimSystem) exp(mean time.Duration) time.Duration {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return time.Duration(-float64(mean) * math.Log(u))
}

// arrive processes one job arrival at the task's home (first-stage)
// processor and schedules the next arrival.
func (s *SimSystem) arrive(t *sched.Task) {
	now := s.eng.Now()
	if now > s.cfg.Horizon {
		return
	}
	job := s.nextJob[t.ID]
	s.nextJob[t.ID] = job + 1

	// Schedule the next arrival.
	var next time.Duration
	if t.Kind == sched.Periodic {
		next = now + t.Period
	} else {
		next = now + s.exp(t.MeanInterarrival)
	}
	if next <= s.cfg.Horizon {
		s.eng.At(next, func() { s.arrive(t) })
	}

	s.metrics.JobArrived(t)
	s.record(TraceArrived, sched.JobRef{Task: t.ID, Job: job}, -1, t.Subtasks[0].Processor)

	// The TE's Per-task fast path: jobs of a decided periodic task under
	// per-task admission control release (or skip) immediately, except when
	// LB-per-job requires a fresh placement from the manager.
	if t.Kind == sched.Periodic && s.cfg.Strategies.AC == StrategyPerTask {
		st := s.teFor(t)
		if st.decided && s.cfg.Strategies.LB != StrategyPerJob {
			if st.accept {
				s.release(t, job, st.placement, now)
			} else {
				s.metrics.JobSkipped(t)
				s.record(TraceSkipped, sched.JobRef{Task: t.ID, Job: job}, -1, -1)
			}
			return
		}
		if !st.decided {
			// Hold the job until the first decision returns; only one "Task
			// Arrive" round trip is outstanding per task.
			st.waiting = append(st.waiting, pendingJob{job: job, arrival: now})
			if !st.requested {
				st.requested = true
				s.requestDecision(t, job, now)
			}
			return
		}
		// Decided + LB-per-job: round trip for the new placement.
	}

	s.requestDecision(t, job, now)
}

// teFor returns (creating if needed) the task effector state for a task.
func (s *SimSystem) teFor(t *sched.Task) *teState {
	st, ok := s.te[t.ID]
	if !ok {
		st = &teState{}
		s.te[t.ID] = st
	}
	return st
}

// requestDecision models the TE pushing a "Task Arrive" event to the AC,
// the manager-side decision, and the "Accept" (or reject) event back.
func (s *SimSystem) requestDecision(t *sched.Task, job int64, arrival time.Duration) {
	s.links.Send(func() {
		// On the task manager: LB Location call + admission test.
		s.eng.After(s.cfg.ACDelay, func() {
			d := s.ctrl.Arrive(t, job, arrival)
			if d.Accept && !d.Reserved {
				// One expiry event per accepted job: with the indexed
				// ledger the event is an O(1) lookup (a no-op when idle
				// resetting already drained the job), so the drain tail
				// stays cheap even at large in-flight job counts.
				ref := sched.JobRef{Task: t.ID, Job: job}
				s.eng.At(arrival+t.Deadline, func() { s.ctrl.ExpireJob(ref) })
			}
			// "Accept" event back to the releasing task effector.
			s.links.Send(func() { s.deliverDecision(t, job, arrival, d) })
		})
	})
}

// deliverDecision applies the AC decision at the task effector(s).
func (s *SimSystem) deliverDecision(t *sched.Task, job int64, arrival time.Duration, d Decision) {
	if t.Kind == sched.Periodic && s.cfg.Strategies.AC == StrategyPerTask {
		st := s.teFor(t)
		if !st.decided {
			st.decided = true
			st.accept = d.Accept
			st.placement = d.Placement
			// Release or drop everything held in the waiting queue.
			waiting := st.waiting
			st.waiting = nil
			for _, w := range waiting {
				if d.Accept {
					s.release(t, w.job, d.Placement, w.arrival)
				} else {
					s.metrics.JobSkipped(t)
					s.record(TraceSkipped, sched.JobRef{Task: t.ID, Job: w.job}, -1, -1)
				}
			}
			return
		}
		// LB-per-job refresh for an already-admitted task.
		st.placement = d.Placement
	}
	if d.Accept {
		s.release(t, job, d.Placement, arrival)
	} else {
		s.metrics.JobSkipped(t)
		s.record(TraceSkipped, sched.JobRef{Task: t.ID, Job: job}, -1, -1)
	}
}

// release starts the job's first subjob on its assigned processor.
func (s *SimSystem) release(t *sched.Task, job int64, placement []sched.PlacedStage, arrival time.Duration) {
	s.metrics.JobReleased(t)
	s.record(TraceReleased, sched.JobRef{Task: t.ID, Job: job}, -1, placement[0].Proc)
	s.startStage(t, job, placement, 0, arrival)
}

// startStage submits the i-th subjob and chains the next stage on
// completion. Trigger events between stages on different processors traverse
// the federated event channel (one link delay); stages co-located on the
// same processor are dispatched through the local channel at no delay.
func (s *SimSystem) startStage(t *sched.Task, job int64, placement []sched.PlacedStage, i int, arrival time.Duration) {
	proc := placement[i].Proc
	ref := sched.JobRef{Task: t.ID, Job: job}
	s.procs[proc].Submit(&des.ExecRequest{
		Label:     fmt.Sprintf("%s/%d", ref, i),
		Priority:  t.Priority,
		Remaining: t.Subtasks[i].Exec,
		OnComplete: func() {
			now := s.eng.Now()
			s.irs[proc].Complete(ref, i, t.Kind, arrival+t.Deadline)
			s.record(TraceStageDone, ref, i, proc)
			if i == len(placement)-1 {
				s.metrics.JobCompleted(t, now-arrival)
				s.record(TraceCompleted, ref, -1, proc)
				return
			}
			if placement[i+1].Proc == proc {
				s.startStage(t, job, placement, i+1, arrival)
				return
			}
			s.links.Send(func() { s.startStage(t, job, placement, i+1, arrival) })
		},
	})
}

// reportIdle pushes the processor's idle-resetting report to the AC.
func (s *SimSystem) reportIdle(proc int) {
	reports := s.irs[proc].Report(s.eng.Now())
	if len(reports) == 0 {
		return
	}
	s.links.Send(func() { s.ctrl.IdleReset(reports) })
}
