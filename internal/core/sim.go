package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/sched"
)

// SimConfig parameterizes a simulated run of the middleware over a workload.
type SimConfig struct {
	// Strategies selects the AC/IR/LB combination under test.
	Strategies Config
	// NumProcs is the number of application processors. The task manager
	// (AC + LB) is a separate node, as in the paper's testbed.
	NumProcs int
	// LinkDelay is the one-way event/invocation delay between nodes. It
	// defaults to 322 µs, the mean one-way delay the paper measured on its
	// 100 Mbps switch (Figure 8).
	LinkDelay time.Duration
	// ACDelay is the task-manager-side processing time per admission
	// decision (the admission test plus, when enabled, the load balancer's
	// Location call). It defaults to 150 µs, consistent with the paper's
	// sub-millisecond AC-side operation costs.
	ACDelay time.Duration
	// Horizon is the workload duration; arrivals stop at the horizon and the
	// run drains in-flight jobs afterwards. Defaults to 5 minutes, the
	// paper's experiment length.
	Horizon time.Duration
	// Seed drives aperiodic interarrival sampling. Runs with equal seeds and
	// workloads are bit-identical.
	Seed int64
	// Trace records per-job lifecycle events (see Trace); off by default.
	Trace bool
	// ExternalArrivals disables the workload's own arrival processes: Run
	// schedules no periodic releases or Poisson arrivals, and AddTasks
	// registers tasks without starting theirs, so every job enters through
	// Submit/SubmitBatch (typically from At callbacks). This is the scenario
	// engine's open-loop mode: the arrival timeline is fully caller-supplied,
	// which is what makes a recorded timeline replayable bit-for-bit.
	ExternalArrivals bool
}

// withDefaults fills unset fields.
func (c SimConfig) withDefaults() SimConfig {
	if c.LinkDelay == 0 {
		c.LinkDelay = 322 * time.Microsecond
	}
	if c.ACDelay == 0 {
		c.ACDelay = 150 * time.Microsecond
	}
	if c.Horizon == 0 {
		c.Horizon = 5 * time.Minute
	}
	return c
}

// teState is the task effector's per-task memory on the arrival processor:
// under per-task admission control it caches the decision so subsequent jobs
// of an admitted periodic task are released immediately without a round trip
// (the TE component's "Per-task" attribute).
type teState struct {
	decided   bool
	accept    bool
	placement []sched.PlacedStage
	waiting   []pendingJob
	requested bool
}

// pendingJob is a job held in the task effector's waiting queue.
type pendingJob struct {
	job     int64
	arrival time.Duration
}

// Typed simulation event kinds. Every hot-path transition of the simulated
// middleware is a des.Event dispatched through SimSystem.HandleEvent, so
// steady-state arrivals schedule no closures. Payload conventions: A is a
// dense task index or pool slot, B a secondary slot or stage, N a job
// number, D an arrival time.
const (
	// evArrive fires a job arrival at the task effector. A = task index.
	evArrive int32 = iota + 1
	// evManagerArrive is the TE's "Task Arrive" event reaching the task
	// manager after one link delay. A = task, N = job, D = arrival.
	evManagerArrive
	// evDecide runs the manager-side LB Location call + admission test after
	// the AC processing delay. A = task, N = job, D = arrival.
	evDecide
	// evExpire removes an accepted job's remaining contributions at its
	// absolute deadline. A = task, N = job.
	evExpire
	// evDeliver applies the AC decision back at the task effector after one
	// link delay. A = task, B = decision pool slot, N = job, D = arrival.
	evDeliver
	// evStageDone is a subjob completion delivered by the simulated
	// processor. A = released-job pool slot, B = stage.
	evStageDone
	// evStageStart submits the next stage after a cross-processor trigger
	// event (one link delay). A = released-job pool slot, B = stage.
	evStageStart
	// evIdleReport delivers an idle-resetting report to the AC after one
	// link delay. A = report pool slot.
	evIdleReport
	// evReconfigQuiesce begins a reconfiguration: admission is quiesced (new
	// arrivals defer) while in-flight decision round trips drain. A = index
	// into the scheduled reconfiguration ops.
	evReconfigQuiesce
	// evReconfigSwap completes a reconfiguration after the quiesce window:
	// strategies swap atomically and the deferred arrivals replay under the
	// new configuration. A = reconfiguration op index.
	evReconfigSwap
)

// deferredArrival is one job arrival held back while admission is quiesced
// during a reconfiguration; it replays through the normal decision routing
// once the new configuration is in place.
type deferredArrival struct {
	task    int32
	job     int64
	arrival time.Duration
}

// reconfigOp is one scheduled reconfiguration: the target configuration,
// the report the swap fills in when it executes, and the virtual time the
// quiesce began.
type reconfigOp struct {
	to         Config
	report     *ReconfigReport
	quiescedAt time.Duration
}

// relJob is one released, in-flight job in the pooled job table: the state
// the old closure chain used to capture, now indexed by slot so stage events
// carry a single int32. The placement slice is copied in at release and its
// capacity is reused across occupants.
type relJob struct {
	task      int32
	job       int64
	arrival   time.Duration
	placement []sched.PlacedStage
}

// SimSystem wires the configurable components onto the discrete-event
// substrate: one simulated processor per application node, an IR component
// and task-effector state per node, and the centralized AC+LB controller on
// the task manager node.
//
// Tasks are interned to dense indices at construction; all per-task runtime
// state (TE memory, next job numbers, metric accumulators) lives in slices
// indexed by that ID, and in-flight decisions, released jobs and idle
// reports live in free-listed pools, so a steady-state arrival performs no
// map lookups and no allocations in the simulation layer.
type SimSystem struct {
	cfg     SimConfig
	eng     *des.Engine
	procs   []*des.Processor
	irs     []*IdleResetter
	links   *des.Link
	ctrl    *Controller
	rng     *rand.Rand
	tasks   []*sched.Task
	taskIdx map[string]int32
	te      []teState
	nextJob []int64
	accs    []*MetricAcc
	metrics Metrics
	trace   []TraceEvent

	// Open-world state: removed marks dense task slots withdrawn by
	// RemoveTasks (slots are never reused — in-flight events address tasks by
	// index), started records that Run has scheduled the workload arrivals,
	// and hub fans lifecycle events out to Watch streams.
	removed []bool
	started bool
	hub     WatchHub

	// Reconfiguration state: while quiescing, new arrivals defer instead of
	// entering the decision path; the swap event replays them under the new
	// configuration. inFlight tracks released-but-uncompleted jobs for the
	// Binding snapshot and the reconfiguration reports.
	epoch     int64
	quiescing bool
	deferred  []deferredArrival
	reconfigs []reconfigOp
	reports   []ReconfigReport
	inFlight  int64
	stopped   bool

	// Pools for in-flight event payloads too wide for a des.Event.
	jobs      []relJob
	freeJobs  []int32
	decs      []Decision
	freeDecs  []int32
	irReports [][]sched.EntryRef
	freeReps  []int32
}

// NewSimSystem builds a simulation over the given tasks. Tasks are cloned;
// EDMS priorities are assigned from end-to-end deadlines. Every referenced
// processor must be within [0, NumProcs).
func NewSimSystem(cfg SimConfig, tasks []*sched.Task) (*SimSystem, error) {
	cfg = cfg.withDefaults()
	if cfg.NumProcs <= 0 {
		return nil, fmt.Errorf("core: sim needs at least one application processor")
	}
	ctrl, err := NewController(cfg.Strategies, cfg.NumProcs)
	if err != nil {
		return nil, err
	}
	cloned := make([]*sched.Task, len(tasks))
	seen := make(map[string]bool, len(tasks))
	for i, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("core: duplicate task ID %q", t.ID)
		}
		seen[t.ID] = true
		for _, st := range t.Subtasks {
			for _, p := range st.Candidates() {
				if p >= cfg.NumProcs {
					return nil, fmt.Errorf("core: task %s references processor %d but sim has %d", t.ID, p, cfg.NumProcs)
				}
			}
		}
		if t.Kind == sched.Aperiodic && t.MeanInterarrival <= 0 {
			return nil, fmt.Errorf("core: aperiodic task %s has no mean interarrival time", t.ID)
		}
		cloned[i] = t.Clone()
	}
	sched.AssignEDMSPriorities(cloned)

	eng := des.NewEngine()
	s := &SimSystem{
		cfg:     cfg,
		eng:     eng,
		ctrl:    ctrl,
		links:   des.NewLink(eng, cfg.LinkDelay),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		tasks:   cloned,
		taskIdx: make(map[string]int32, len(cloned)),
		te:      make([]teState, len(cloned)),
		nextJob: make([]int64, len(cloned)),
		accs:    make([]*MetricAcc, len(cloned)),
		removed: make([]bool, len(cloned)),
	}
	for i, t := range cloned {
		s.taskIdx[t.ID] = int32(i)
	}
	s.procs = make([]*des.Processor, cfg.NumProcs)
	s.irs = make([]*IdleResetter, cfg.NumProcs)
	for i := 0; i < cfg.NumProcs; i++ {
		s.procs[i] = des.NewProcessor(eng, i)
		s.irs[i] = NewIdleResetter(cfg.Strategies.IR, i)
		if cfg.Strategies.IR != StrategyNone {
			i := i
			s.procs[i].SetIdleCallback(func() { s.reportIdle(i) })
		}
	}
	return s, nil
}

// Metrics returns the run's accounting. Valid after Run.
func (s *SimSystem) Metrics() *Metrics { return &s.metrics }

// Controller exposes the AC+LB policy object for instrumentation.
func (s *SimSystem) Controller() *Controller { return s.ctrl }

// Engine exposes the simulation engine (tests use it for clock access).
func (s *SimSystem) Engine() *des.Engine { return s.eng }

// acc returns (creating lazily, so idle tasks never appear in the per-task
// metrics) the cached metric accumulator for a task.
func (s *SimSystem) acc(ti int32) *MetricAcc {
	a := s.accs[ti]
	if a == nil {
		a = s.metrics.Acc(s.tasks[ti])
		s.accs[ti] = a
	}
	return a
}

// Run executes the workload: arrivals from time zero to the horizon, then a
// drain window long enough for every in-flight job to finish or expire.
// After the drain it audits the admission ledger's indexes (CheckInvariants),
// so every simulated experiment doubles as an index-consistency test; an
// inconsistent ledger is a programming bug and panics loudly.
func (s *SimSystem) Run() *Metrics {
	if s.stopped {
		return &s.metrics
	}
	if !s.started {
		s.started = true
		if !s.cfg.ExternalArrivals {
			for i := range s.tasks {
				if !s.removed[i] {
					s.scheduleFirstArrival(int32(i), 0)
				}
			}
		}
	}
	var maxDeadline time.Duration
	for _, t := range s.tasks {
		if t.Deadline > maxDeadline {
			maxDeadline = t.Deadline
		}
	}
	s.eng.RunUntil(s.cfg.Horizon + 2*maxDeadline + time.Second)
	if err := s.ctrl.Ledger().CheckInvariants(); err != nil {
		panic(fmt.Sprintf("core: ledger inconsistent after run: %v", err))
	}
	return &s.metrics
}

// --- Unified Binding surface + live reconfiguration protocol ---

// Submit injects one extra job arrival for the named task at the current
// virtual time, beyond the workload's own arrival process. It is the
// simulation half of the unified Binding surface: before Run it queues an
// arrival at time zero; called from inside an engine callback (see At) it
// arrives "now". The returned Admission carries the assigned job number and
// the decision state: per-task cached decisions resolve synchronously, every
// other arrival is Pending and resolves on the watch stream once the
// decision round trip completes in virtual time.
func (s *SimSystem) Submit(taskID string) (Admission, error) {
	adm := Admission{Task: taskID, Job: -1}
	if s.stopped {
		return adm, fmt.Errorf("core: sim: submit: %w", ErrStopped)
	}
	ti, ok := s.taskIdx[taskID]
	if !ok {
		return adm, fmt.Errorf("core: sim: submit: %w: %q", ErrUnknownTask, taskID)
	}
	t := s.tasks[ti]
	job := s.nextJob[ti]
	s.nextJob[ti] = job + 1
	now := s.eng.Now()
	s.acc(ti).Arrived()
	s.record(TraceArrived, sched.JobRef{Task: t.ID, Job: job}, -1, t.Subtasks[0].Processor)

	adm.Job = job
	adm.Outcome, adm.Reason, adm.Placement = s.routeArrival(ti, job, now)
	return adm, nil
}

// SubmitBatch injects one arrival per named task at the current virtual
// time. The IDs are validated up front, so either every arrival is injected
// or none is. On the simulation binding the batch is a convenience; on the
// live binding it amortizes transport round trips.
func (s *SimSystem) SubmitBatch(taskIDs []string) ([]Admission, error) {
	if s.stopped {
		return nil, fmt.Errorf("core: sim: submit batch: %w", ErrStopped)
	}
	for _, id := range taskIDs {
		if _, ok := s.taskIdx[id]; !ok {
			return nil, fmt.Errorf("core: sim: submit batch: %w: %q", ErrUnknownTask, id)
		}
	}
	out := make([]Admission, 0, len(taskIDs))
	for _, id := range taskIDs {
		adm, err := s.Submit(id)
		if err != nil {
			return out, err
		}
		out = append(out, adm)
	}
	return out, nil
}

// AddTasks registers new tasks on the running binding: each task joins the
// dense index (TE memory, job numbering, metric accumulators grow in place),
// EDMS priorities are re-assigned over the whole active set — jobs already
// queued keep the priority they were submitted with; subsequent releases use
// the new assignment — and, when the run has started, the tasks' own arrival
// processes are scheduled from the current virtual time. IDs are validated
// against the active set before anything is registered, so the call is
// all-or-nothing. A removed ID may be re-registered; it gets a fresh slot
// and restarts job numbering at zero.
func (s *SimSystem) AddTasks(tasks []*sched.Task) error {
	if s.stopped {
		return fmt.Errorf("core: sim: add tasks: %w", ErrStopped)
	}
	seen := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if _, ok := s.taskIdx[t.ID]; ok || seen[t.ID] {
			return fmt.Errorf("core: sim: add tasks: %w: %q", ErrTaskExists, t.ID)
		}
		seen[t.ID] = true
		for _, st := range t.Subtasks {
			for _, p := range st.Candidates() {
				if p >= s.cfg.NumProcs {
					return fmt.Errorf("core: task %s references processor %d but sim has %d", t.ID, p, s.cfg.NumProcs)
				}
			}
		}
		if t.Kind == sched.Aperiodic && t.MeanInterarrival <= 0 {
			return fmt.Errorf("core: aperiodic task %s has no mean interarrival time", t.ID)
		}
	}
	base := int32(len(s.tasks))
	now := s.eng.Now()
	for _, t := range tasks {
		c := t.Clone()
		s.tasks = append(s.tasks, c)
		s.taskIdx[c.ID] = int32(len(s.tasks) - 1)
		s.te = append(s.te, teState{})
		s.nextJob = append(s.nextJob, 0)
		s.accs = append(s.accs, nil)
		s.removed = append(s.removed, false)
	}
	s.reassignPriorities()
	for i := base; i < int32(len(s.tasks)); i++ {
		if s.started && !s.cfg.ExternalArrivals {
			s.scheduleFirstArrival(i, now)
		}
		if s.hub.Active() {
			s.hub.Emit(WatchEvent{
				Kind: WatchTaskAdded, Task: s.tasks[i].ID, Job: -1,
				At: now, Config: s.cfg.Strategies, Epoch: s.epoch,
			})
		}
	}
	return nil
}

// RemoveTasks withdraws tasks from the running binding: their remaining
// ledger contributions (including permanent per-task reservations) are
// released through the controller's task index, their arrival processes
// stop, and EDMS priorities are re-assigned over the survivors. Jobs already
// released keep executing to completion — removal never loses an admitted
// job — while arrivals still awaiting a decision resolve as rejected once
// their in-flight round trip drains. IDs are validated first, so the call is
// all-or-nothing.
func (s *SimSystem) RemoveTasks(ids []string) error {
	if s.stopped {
		return fmt.Errorf("core: sim: remove tasks: %w", ErrStopped)
	}
	tis := make([]int32, len(ids))
	seen := make(map[string]bool, len(ids))
	for i, id := range ids {
		ti, ok := s.taskIdx[id]
		if !ok || seen[id] {
			return fmt.Errorf("core: sim: remove tasks: %w: %q", ErrUnknownTask, id)
		}
		seen[id] = true
		tis[i] = ti
	}
	now := s.eng.Now()
	for _, ti := range tis {
		t := s.tasks[ti]
		s.removed[ti] = true
		delete(s.taskIdx, t.ID)
		s.ctrl.RemoveTask(t.ID)
		if s.hub.Active() {
			s.hub.Emit(WatchEvent{
				Kind: WatchTaskRemoved, Task: t.ID, Job: -1,
				At: now, Config: s.cfg.Strategies, Epoch: s.epoch,
			})
		}
	}
	s.reassignPriorities()
	return nil
}

// Watch opens an ordered stream of lifecycle events (see WatchKind). Events
// are emitted in virtual-time order and delivered in strictly increasing Seq
// order; a consumer that falls behind the stream's buffer loses newest
// events (counted by Dropped) rather than stalling the simulation. Streams
// close when cancelled or when the binding stops.
func (s *SimSystem) Watch(opts WatchOptions) (*WatchStream, error) {
	if s.stopped {
		return nil, fmt.Errorf("core: sim: watch: %w", ErrStopped)
	}
	return s.hub.Subscribe(opts), nil
}

// At schedules fn at an absolute virtual time. It is the hook open-world
// callers use to drive Submit / AddTasks / RemoveTasks mid-run: the callback
// executes inside the engine between events, so binding calls made from it
// are ordinary same-thread operations.
func (s *SimSystem) At(at time.Duration, fn func()) error {
	if s.stopped {
		return fmt.Errorf("core: sim: at: %w", ErrStopped)
	}
	if now := s.eng.Now(); at < now {
		return fmt.Errorf("core: sim: at %v is in the past (now %v)", at, now)
	}
	s.eng.At(at, fn)
	return nil
}

// TaskIDs lists the binding's active (non-removed) task IDs in registration
// order.
func (s *SimSystem) TaskIDs() []string {
	out := make([]string, 0, len(s.tasks))
	for i, t := range s.tasks {
		if !s.removed[i] {
			out = append(out, t.ID)
		}
	}
	return out
}

// reassignPriorities re-runs the EDMS assignment over the active task set.
func (s *SimSystem) reassignPriorities() {
	active := make([]*sched.Task, 0, len(s.tasks))
	for i, t := range s.tasks {
		if !s.removed[i] {
			active = append(active, t)
		}
	}
	sched.AssignEDMSPriorities(active)
}

// Snapshot returns the binding's current configuration, epoch and aggregate
// job accounting.
func (s *SimSystem) Snapshot() BindingSnapshot {
	return BindingSnapshot{
		Config:    s.cfg.Strategies,
		Epoch:     s.epoch,
		Arrived:   s.metrics.Total.Arrived,
		Released:  s.metrics.Total.Released,
		Skipped:   s.metrics.Total.Skipped,
		Completed: s.metrics.Total.Completed,
		InFlight:  s.inFlight,
		// Shed stays zero: the sim's in-memory planes never refuse work.
		WatchDropped: s.hub.Dropped(),
	}
}

// Stop retires the binding: subsequent Run calls return the metrics
// accumulated so far, Submit and the lifecycle calls refuse new work, and
// every watch stream closes. The simulation holds no external resources, so
// Stop never fails.
func (s *SimSystem) Stop() error {
	s.stopped = true
	s.hub.CloseAll()
	return nil
}

// quiesceWindow is how long admission stays quiesced before the strategy
// swap: one manager-bound link delay plus the AC processing delay plus the
// link delay back covers the last decision round trip started before the
// quiesce, so by the swap instant no in-flight decision can be travelling.
// The extra nanosecond orders the swap after same-instant deliveries.
func (s *SimSystem) quiesceWindow() time.Duration {
	return 2*s.cfg.LinkDelay + s.cfg.ACDelay + time.Nanosecond
}

// ScheduleReconfig schedules a reconfiguration to the target combination at
// an absolute virtual time: the epoch-versioned two-phase protocol quiesces
// admission at that instant, swaps strategies after the quiesce window, and
// replays deferred arrivals under the new configuration. Invalid target
// combinations are rejected immediately, leaving the run untouched.
// Several reconfigurations may be scheduled to form a strategy schedule;
// overlapping windows execute back to back in order. The returned report is
// filled in when the swap executes (read it after Run).
func (s *SimSystem) ScheduleReconfig(at time.Duration, to Config) (*ReconfigReport, error) {
	if err := to.Validate(); err != nil {
		return nil, err
	}
	if now := s.eng.Now(); at < now {
		return nil, fmt.Errorf("core: sim: reconfigure at %v is in the past (now %v)", at, now)
	}
	rep := &ReconfigReport{From: s.cfg.Strategies, To: to}
	s.reconfigs = append(s.reconfigs, reconfigOp{to: to, report: rep})
	s.eng.AtEvent(at, s, des.Event{Kind: evReconfigQuiesce, A: int32(len(s.reconfigs) - 1)})
	return rep, nil
}

// Reconfigure is the Binding form of ScheduleReconfig: with the engine idle
// (before Run, or after a drain) no decision round trip can be in flight,
// so the swap applies synchronously and the returned report is complete.
// With events pending it schedules the protocol at the current virtual time
// and the report is completed once virtual time passes the quiesce window.
func (s *SimSystem) Reconfigure(to Config) (*ReconfigReport, error) {
	if s.eng.PendingCount() > 0 {
		return s.ScheduleReconfig(s.eng.Now(), to)
	}
	if err := to.Validate(); err != nil {
		return nil, err
	}
	rep := &ReconfigReport{InFlightBefore: s.inFlight}
	s.reconfigs = append(s.reconfigs, reconfigOp{to: to, report: rep, quiescedAt: s.eng.Now()})
	s.swapConfig(int32(len(s.reconfigs) - 1))
	return rep, nil
}

// ReconfigReports lists the completed reconfigurations in execution order.
func (s *SimSystem) ReconfigReports() []ReconfigReport { return s.reports }

// beginQuiesce starts a scheduled reconfiguration: admission quiesces (new
// arrivals defer via routeArrival) and the swap is scheduled after the
// quiesce window. If another reconfiguration is still draining, this one
// retries right after its swap completes.
func (s *SimSystem) beginQuiesce(idx int32) {
	if s.quiescing {
		s.eng.AfterEvent(s.quiesceWindow()+time.Nanosecond, s, des.Event{Kind: evReconfigQuiesce, A: idx})
		return
	}
	op := &s.reconfigs[idx]
	op.quiescedAt = s.eng.Now()
	op.report.InFlightBefore = s.inFlight
	s.quiescing = true
	s.eng.AfterEvent(s.quiesceWindow(), s, des.Event{Kind: evReconfigSwap, A: idx})
}

// swapConfig atomically installs the target configuration once the quiesce
// window has drained every in-flight decision round trip: the controller
// rebases its ledger and decision memory, task-effector per-task caches
// reset (they were decided under the old configuration), idle resetters
// swap their rule, and the deferred arrivals replay — with their original
// arrival times — under the new configuration. No admitted job is touched:
// released jobs keep executing on their old placements.
func (s *SimSystem) swapConfig(idx int32) {
	op := &s.reconfigs[idx]
	from := s.cfg.Strategies
	released, err := s.ctrl.Reconfigure(op.to)
	if err != nil {
		// Targets are validated when scheduled; failing here is a bug.
		panic(fmt.Sprintf("core: sim: reconfigure to %s: %v", op.to, err))
	}
	s.cfg.Strategies = op.to

	// Reset effector memory: per-task decisions and placements were made
	// under the old configuration. Any job somehow still waiting for a
	// decision (none can be, after the quiesce window) joins the deferred
	// replay so no arrival is ever dropped.
	for i := range s.te {
		st := &s.te[i]
		for _, w := range st.waiting {
			s.deferred = append(s.deferred, deferredArrival{task: int32(i), job: w.job, arrival: w.arrival})
		}
		st.waiting = st.waiting[:0]
		st.decided = false
		st.accept = false
		st.placement = nil
		st.requested = false
	}

	// Idle resetters swap their rule; processors gain or drop the idle
	// detector to match.
	for i := range s.irs {
		s.irs[i].SetStrategy(op.to.IR)
		if op.to.IR == StrategyNone {
			s.procs[i].SetIdleCallback(nil)
		} else if from.IR == StrategyNone {
			i := i
			s.procs[i].SetIdleCallback(func() { s.reportIdle(i) })
		}
	}

	s.epoch++
	s.quiescing = false
	deferred := s.deferred
	s.deferred = nil
	*op.report = ReconfigReport{
		From:                 from,
		To:                   op.to,
		Epoch:                s.epoch,
		At:                   s.eng.Now(),
		Quiesce:              s.eng.Now() - op.quiescedAt,
		Deferred:             int64(len(deferred)),
		InFlightBefore:       op.report.InFlightBefore,
		InFlightAfter:        s.inFlight,
		ReservationsReleased: released,
	}
	s.reports = append(s.reports, *op.report)
	if s.hub.Active() {
		s.hub.Emit(WatchEvent{
			Kind: WatchReconfigured, Task: "", Job: -1,
			At: s.eng.Now(), Config: op.to, Epoch: s.epoch,
		})
	}
	for _, d := range deferred {
		s.routeArrival(d.task, d.job, d.arrival)
	}
}

// scheduleFirstArrival schedules the first job arrival for a task. base is
// zero for the workload's construction-time tasks and the current virtual
// time for tasks added mid-run.
func (s *SimSystem) scheduleFirstArrival(ti int32, base time.Duration) {
	t := s.tasks[ti]
	at := base + t.Phase
	if t.Kind == sched.Aperiodic {
		at += s.exp(t.MeanInterarrival)
	}
	if at > s.cfg.Horizon {
		return
	}
	s.eng.AtEvent(at, s, des.Event{Kind: evArrive, A: ti})
}

// exp samples an exponential interarrival with the given mean (Poisson
// arrival process).
func (s *SimSystem) exp(mean time.Duration) time.Duration {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return time.Duration(-float64(mean) * math.Log(u))
}

// HandleEvent is the engine's dispatch target: a jump table over the typed
// simulation events. It is an implementation detail exposed only because the
// des engine calls it.
func (s *SimSystem) HandleEvent(ev des.Event) {
	switch ev.Kind {
	case evArrive:
		s.arrive(ev.A)
	case evManagerArrive:
		// On the task manager: queue the LB Location call + admission test
		// behind the AC processing delay.
		s.eng.AfterEvent(s.cfg.ACDelay, s, des.Event{Kind: evDecide, A: ev.A, N: ev.N, D: ev.D})
	case evDecide:
		s.decide(ev.A, ev.N, ev.D)
	case evExpire:
		s.ctrl.ExpireJob(sched.JobRef{Task: s.tasks[ev.A].ID, Job: ev.N})
	case evDeliver:
		d := s.decs[ev.B]
		s.freeDec(ev.B)
		s.deliverDecision(ev.A, ev.N, ev.D, d)
	case evStageDone:
		s.stageDone(ev.A, ev.B)
	case evStageStart:
		s.startStage(ev.A, ev.B)
	case evIdleReport:
		s.ctrl.IdleReset(s.irReports[ev.A])
		s.freeReport(ev.A)
	case evReconfigQuiesce:
		s.beginQuiesce(ev.A)
	case evReconfigSwap:
		s.swapConfig(ev.A)
	default:
		panic(fmt.Sprintf("core: unknown sim event kind %d", ev.Kind))
	}
}

// arrive processes one job arrival at the task's home (first-stage)
// processor and schedules the next arrival.
func (s *SimSystem) arrive(ti int32) {
	if s.removed[ti] {
		// The task left the system after this arrival event was scheduled;
		// its arrival process ends here.
		return
	}
	t := s.tasks[ti]
	now := s.eng.Now()
	if now > s.cfg.Horizon {
		return
	}
	job := s.nextJob[ti]
	s.nextJob[ti] = job + 1

	// Schedule the next arrival.
	var next time.Duration
	if t.Kind == sched.Periodic {
		next = now + t.Period
	} else {
		next = now + s.exp(t.MeanInterarrival)
	}
	if next <= s.cfg.Horizon {
		s.eng.AtEvent(next, s, des.Event{Kind: evArrive, A: ti})
	}

	s.acc(ti).Arrived()
	s.record(TraceArrived, sched.JobRef{Task: t.ID, Job: job}, -1, t.Subtasks[0].Processor)
	s.routeArrival(ti, job, now)
}

// routeArrival runs the task effector's decision routing for one arrived
// job: while admission is quiesced the arrival defers; otherwise the TE's
// per-task fast path applies or a "Task Arrive" round trip starts. Deferred
// arrivals replay through this same path — with their original arrival
// times — once the reconfiguration swap installs the new configuration.
//
// It returns the arrival's immediate resolution — Accepted/Rejected when
// the per-task cache decided synchronously, Pending otherwise — which is
// exactly what Submit reports as the typed Admission, so the fast-path
// predicate lives in one place. The workload's own arrivals ignore it.
func (s *SimSystem) routeArrival(ti int32, job int64, arrival time.Duration) (AdmissionOutcome, string, []sched.PlacedStage) {
	if s.quiescing {
		s.deferred = append(s.deferred, deferredArrival{task: ti, job: job, arrival: arrival})
		return AdmissionPending, "reconfiguration quiesce: arrival deferred", nil
	}
	t := s.tasks[ti]

	// The TE's Per-task fast path: jobs of a decided periodic task under
	// per-task admission control release (or skip) immediately, except when
	// LB-per-job requires a fresh placement from the manager.
	if t.Kind == sched.Periodic && s.cfg.Strategies.AC == StrategyPerTask {
		st := &s.te[ti]
		if st.decided && s.cfg.Strategies.LB != StrategyPerJob {
			if st.accept {
				s.release(ti, job, st.placement, arrival)
				return AdmissionAccepted, "", st.placement
			}
			s.skipJob(ti, job)
			return AdmissionRejected, "per-task admission decision cached as rejected", nil
		}
		if !st.decided {
			// Hold the job until the first decision returns; only one "Task
			// Arrive" round trip is outstanding per task.
			st.waiting = append(st.waiting, pendingJob{job: job, arrival: arrival})
			if !st.requested {
				st.requested = true
				s.requestDecision(ti, job, arrival)
			}
			return AdmissionPending, "admission decision round trip in flight", nil
		}
		// Decided + LB-per-job: round trip for the new placement.
	}

	s.requestDecision(ti, job, arrival)
	return AdmissionPending, "admission decision round trip in flight", nil
}

// requestDecision models the TE pushing a "Task Arrive" event to the AC; the
// manager-side decision and the "Accept" event back are chained typed
// events.
func (s *SimSystem) requestDecision(ti int32, job int64, arrival time.Duration) {
	s.links.SendEvent(s, des.Event{Kind: evManagerArrive, A: ti, N: job, D: arrival})
}

// decide runs the manager-side admission decision and pushes the "Accept"
// (or reject) event back to the releasing task effector.
func (s *SimSystem) decide(ti int32, job int64, arrival time.Duration) {
	t := s.tasks[ti]
	if s.removed[ti] {
		// The task was withdrawn while this round trip was in flight: deliver
		// a rejection through the normal path, so waiting queues drain and
		// the arrival is accounted exactly once.
		di := s.allocDec(Decision{})
		s.links.SendEvent(s, des.Event{Kind: evDeliver, A: ti, B: di, N: job, D: arrival})
		return
	}
	d := s.ctrl.Arrive(t, job, arrival)
	if d.Accept && !d.Reserved {
		// One expiry event per accepted job: with the indexed ledger the
		// event is an O(1) lookup (a no-op when idle resetting already
		// drained the job), so the drain tail stays cheap even at large
		// in-flight job counts. A deferred arrival replayed after a
		// reconfiguration can carry a deadline already in the past; its
		// expiry then fires immediately instead of scheduling backwards.
		expireAt := arrival + t.Deadline
		if now := s.eng.Now(); expireAt < now {
			expireAt = now
		}
		s.eng.AtEvent(expireAt, s, des.Event{Kind: evExpire, A: ti, N: job})
	}
	// "Accept" event back to the releasing task effector; the decision waits
	// in the pool while the event crosses the link.
	di := s.allocDec(d)
	s.links.SendEvent(s, des.Event{Kind: evDeliver, A: ti, B: di, N: job, D: arrival})
}

// deliverDecision applies the AC decision at the task effector(s).
func (s *SimSystem) deliverDecision(ti int32, job int64, arrival time.Duration, d Decision) {
	t := s.tasks[ti]
	if t.Kind == sched.Periodic && s.cfg.Strategies.AC == StrategyPerTask {
		st := &s.te[ti]
		if !st.decided {
			st.decided = true
			st.accept = d.Accept
			st.placement = d.Placement
			// Release or drop everything held in the waiting queue.
			waiting := st.waiting
			st.waiting = nil
			for _, w := range waiting {
				if d.Accept {
					s.release(ti, w.job, d.Placement, w.arrival)
				} else {
					s.skipJob(ti, w.job)
				}
			}
			// Keep the drained queue's capacity for any later use.
			st.waiting = waiting[:0]
			return
		}
		// LB-per-job refresh for an already-admitted task.
		st.placement = d.Placement
	}
	if d.Accept {
		s.release(ti, job, d.Placement, arrival)
	} else {
		s.skipJob(ti, job)
	}
}

// skipJob accounts one not-released job and notifies watchers.
func (s *SimSystem) skipJob(ti int32, job int64) {
	s.acc(ti).Skipped()
	s.record(TraceSkipped, sched.JobRef{Task: s.tasks[ti].ID, Job: job}, -1, -1)
	if s.hub.Active() {
		s.hub.Emit(WatchEvent{
			Kind: WatchRejected, Task: s.tasks[ti].ID, Job: job,
			At: s.eng.Now(), Config: s.cfg.Strategies, Epoch: s.epoch,
		})
	}
}

// release starts the job's first subjob on its assigned processor.
func (s *SimSystem) release(ti int32, job int64, placement []sched.PlacedStage, arrival time.Duration) {
	s.acc(ti).Released()
	s.inFlight++
	s.record(TraceReleased, sched.JobRef{Task: s.tasks[ti].ID, Job: job}, -1, placement[0].Proc)
	if s.hub.Active() {
		s.hub.Emit(WatchEvent{
			Kind: WatchAdmitted, Task: s.tasks[ti].ID, Job: job,
			At: s.eng.Now(), Placement: placement,
			Config: s.cfg.Strategies, Epoch: s.epoch,
		})
	}
	ji := s.allocJob(ti, job, arrival, placement)
	s.startStage(ji, 0)
}

// startStage submits the i-th subjob; completion and cross-processor trigger
// events chain through stageDone. Trigger events between stages on different
// processors traverse the federated event channel (one link delay); stages
// co-located on the same processor are dispatched through the local channel
// at no delay.
func (s *SimSystem) startStage(ji, stage int32) {
	j := &s.jobs[ji]
	t := s.tasks[j.task]
	proc := j.placement[stage].Proc
	s.procs[proc].SubmitEvent(t.Priority, t.Subtasks[stage].Exec, s, des.Event{Kind: evStageDone, A: ji, B: stage})
}

// stageDone handles one subjob completion: IR bookkeeping, then either the
// next stage or job completion.
func (s *SimSystem) stageDone(ji, stage int32) {
	j := &s.jobs[ji]
	ti := j.task
	t := s.tasks[ti]
	now := s.eng.Now()
	proc := j.placement[stage].Proc
	ref := sched.JobRef{Task: t.ID, Job: j.job}
	s.irs[proc].Complete(ref, int(stage), t.Kind, j.arrival+t.Deadline)
	s.record(TraceStageDone, ref, int(stage), proc)
	if int(stage) == len(j.placement)-1 {
		resp := now - j.arrival
		s.acc(ti).Completed(resp)
		s.inFlight--
		s.record(TraceCompleted, ref, -1, proc)
		if s.hub.Active() {
			ev := WatchEvent{
				Kind: WatchCompleted, Task: t.ID, Job: j.job,
				At: now, Response: resp,
				Config: s.cfg.Strategies, Epoch: s.epoch,
			}
			s.hub.Emit(ev)
			if resp > t.Deadline {
				ev.Kind = WatchDeadlineMiss
				s.hub.Emit(ev)
			}
		}
		s.freeJob(ji)
		return
	}
	if j.placement[stage+1].Proc == proc {
		s.startStage(ji, stage+1)
		return
	}
	s.links.SendEvent(s, des.Event{Kind: evStageStart, A: ji, B: stage + 1})
}

// reportIdle pushes the processor's idle-resetting report to the AC.
func (s *SimSystem) reportIdle(proc int) {
	ri := s.allocReport()
	out := s.irs[proc].ReportInto(s.eng.Now(), s.irReports[ri][:0])
	s.irReports[ri] = out
	if len(out) == 0 {
		s.freeReport(ri)
		return
	}
	s.links.SendEvent(s, des.Event{Kind: evIdleReport, A: ri})
}

// allocJob takes a released-job slot and copies the placement into its
// reusable buffer.
func (s *SimSystem) allocJob(ti int32, job int64, arrival time.Duration, placement []sched.PlacedStage) int32 {
	var ji int32
	if n := len(s.freeJobs); n > 0 {
		ji = s.freeJobs[n-1]
		s.freeJobs = s.freeJobs[:n-1]
	} else {
		s.jobs = append(s.jobs, relJob{})
		ji = int32(len(s.jobs) - 1)
	}
	j := &s.jobs[ji]
	j.task = ti
	j.job = job
	j.arrival = arrival
	j.placement = append(j.placement[:0], placement...)
	return ji
}

func (s *SimSystem) freeJob(ji int32) {
	s.freeJobs = append(s.freeJobs, ji)
}

// allocDec parks a decision while its "Accept" event crosses the link.
func (s *SimSystem) allocDec(d Decision) int32 {
	if n := len(s.freeDecs); n > 0 {
		di := s.freeDecs[n-1]
		s.freeDecs = s.freeDecs[:n-1]
		s.decs[di] = d
		return di
	}
	s.decs = append(s.decs, d)
	return int32(len(s.decs) - 1)
}

func (s *SimSystem) freeDec(di int32) {
	s.decs[di] = Decision{}
	s.freeDecs = append(s.freeDecs, di)
}

// allocReport takes a reusable idle-report buffer slot.
func (s *SimSystem) allocReport() int32 {
	if n := len(s.freeReps); n > 0 {
		ri := s.freeReps[n-1]
		s.freeReps = s.freeReps[:n-1]
		return ri
	}
	s.irReports = append(s.irReports, nil)
	return int32(len(s.irReports) - 1)
}

func (s *SimSystem) freeReport(ri int32) {
	s.irReports[ri] = s.irReports[ri][:0]
	s.freeReps = append(s.freeReps, ri)
}
