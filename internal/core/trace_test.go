package core

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func TestSimTraceLifecycle(t *testing.T) {
	task := &sched.Task{
		ID: "p", Kind: sched.Periodic,
		Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
		Subtasks: []sched.Subtask{
			{Index: 0, Exec: 10 * time.Millisecond, Processor: 0},
			{Index: 1, Exec: 5 * time.Millisecond, Processor: 1},
		},
	}
	cfg := simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 2)
	cfg.Horizon = time.Second
	cfg.Trace = true
	s := mustSim(t, cfg, []*sched.Task{task})
	m := s.Run()

	trace := s.Trace()
	if len(trace) == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}

	// Events are recorded in non-decreasing virtual time.
	for i := 1; i < len(trace); i++ {
		if trace[i].At < trace[i-1].At {
			t.Fatalf("trace time went backwards at %d: %v after %v", i, trace[i], trace[i-1])
		}
	}

	counts := make(map[TraceKind]int64)
	stageDone := make(map[sched.JobRef]int)
	for _, ev := range trace {
		counts[ev.Kind]++
		if ev.Kind == TraceStageDone {
			stageDone[ev.Ref]++
		}
	}
	if counts[TraceArrived] != m.Total.Arrived {
		t.Errorf("trace arrivals %d != metric %d", counts[TraceArrived], m.Total.Arrived)
	}
	if counts[TraceReleased] != m.Total.Released {
		t.Errorf("trace releases %d != metric %d", counts[TraceReleased], m.Total.Released)
	}
	if counts[TraceSkipped] != m.Total.Skipped {
		t.Errorf("trace skips %d != metric %d", counts[TraceSkipped], m.Total.Skipped)
	}
	if counts[TraceCompleted] != m.Total.Completed {
		t.Errorf("trace completions %d != metric %d", counts[TraceCompleted], m.Total.Completed)
	}
	// Every completed job executed exactly its two stages.
	if counts[TraceStageDone] != 2*counts[TraceCompleted] {
		t.Errorf("stage-done events %d, want %d", counts[TraceStageDone], 2*counts[TraceCompleted])
	}
	for ref, n := range stageDone {
		if n != 2 {
			t.Errorf("job %s recorded %d stage completions, want 2", ref, n)
		}
	}
}

func TestSimTraceDisabledByDefault(t *testing.T) {
	task := periodicTask("p", 0, 10*time.Millisecond, 100*time.Millisecond)
	cfg := simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1)
	cfg.Horizon = 500 * time.Millisecond
	s := mustSim(t, cfg, []*sched.Task{task})
	s.Run()
	if got := s.Trace(); got != nil {
		t.Errorf("trace recorded %d events without Trace option", len(got))
	}
}

func TestTraceKindString(t *testing.T) {
	tests := map[TraceKind]string{
		TraceArrived:   "arrived",
		TraceReleased:  "released",
		TraceSkipped:   "skipped",
		TraceStageDone: "stage-done",
		TraceCompleted: "completed",
		TraceKind(0):   "TraceKind(0)",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("TraceKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	ev := TraceEvent{At: time.Second, Kind: TraceStageDone, Ref: sched.JobRef{Task: "t", Job: 1}, Stage: 0, Proc: 2}
	if got := ev.String(); got != "1s stage-done t#1 stage=0 proc=2" {
		t.Errorf("TraceEvent.String() = %q", got)
	}
}

func TestMetricsPerTask(t *testing.T) {
	tasks := []*sched.Task{
		periodicTask("p1", 0, 10*time.Millisecond, 100*time.Millisecond),
		aperiodicTask("a1", 0, 10*time.Millisecond, 200*time.Millisecond),
	}
	cfg := simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1)
	cfg.Horizon = time.Second
	s := mustSim(t, cfg, tasks)
	m := s.Run()

	ids := m.TaskIDs()
	if len(ids) != 2 || ids[0] != "a1" || ids[1] != "p1" {
		t.Fatalf("TaskIDs = %v", ids)
	}
	p1 := m.Task("p1")
	a1 := m.Task("a1")
	if p1.Arrived+a1.Arrived != m.Total.Arrived {
		t.Errorf("per-task arrivals %d+%d != total %d", p1.Arrived, a1.Arrived, m.Total.Arrived)
	}
	if p1.Arrived != m.Periodic.Arrived {
		t.Errorf("p1 arrivals %d != periodic bucket %d", p1.Arrived, m.Periodic.Arrived)
	}
	if ghost := m.Task("nope"); ghost.Arrived != 0 {
		t.Errorf("unknown task bucket = %+v", ghost)
	}
}
