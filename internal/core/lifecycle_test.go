package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sched"
)

// TestSimAddRemoveTasksMidRun pins the open-world tentpole on the simulation
// binding: tasks join and leave a running system, no admitted job is lost,
// the arrival accounting closes, and the ledger audit (run inside Run)
// passes. A removed ID can be re-registered and restarts job numbering.
func TestSimAddRemoveTasksMidRun(t *testing.T) {
	base := []*sched.Task{
		periodicTask("p0", 0, 10*time.Millisecond, 200*time.Millisecond, 1),
		aperiodicTask("a0", 1, 5*time.Millisecond, 150*time.Millisecond),
	}
	sim := mustSim(t, simCfg(Config{AC: StrategyPerTask, IR: StrategyPerTask, LB: StrategyPerTask}, 2), base)

	tenant := []*sched.Task{
		aperiodicTask("t0", 0, 4*time.Millisecond, 120*time.Millisecond),
		periodicTask("t1", 1, 6*time.Millisecond, 180*time.Millisecond),
	}
	if err := sim.At(10*time.Second, func() {
		if err := sim.AddTasks(tenant); err != nil {
			t.Errorf("mid-run AddTasks: %v", err)
			return
		}
		adms, err := sim.SubmitBatch([]string{"t0", "t1", "t0"})
		if err != nil {
			t.Errorf("mid-run SubmitBatch: %v", err)
			return
		}
		if len(adms) != 3 || adms[0].Job != 0 || adms[2].Job != 1 {
			t.Errorf("batch admissions = %+v", adms)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.At(20*time.Second, func() {
		if err := sim.RemoveTasks([]string{"t0", "p0"}); err != nil {
			t.Errorf("mid-run RemoveTasks: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Re-register a removed ID: a fresh slot, job numbering restarts at 0.
	if err := sim.At(25*time.Second, func() {
		fresh := aperiodicTask("t0", 1, 3*time.Millisecond, 100*time.Millisecond)
		if err := sim.AddTasks([]*sched.Task{fresh}); err != nil {
			t.Errorf("re-register removed ID: %v", err)
			return
		}
		adm, err := sim.Submit("t0")
		if err != nil {
			t.Errorf("submit to re-registered task: %v", err)
			return
		}
		if adm.Job != 0 {
			t.Errorf("re-registered task's first job = %d, want 0", adm.Job)
		}
	}); err != nil {
		t.Fatal(err)
	}

	m := sim.Run() // ledger audit panics on inconsistency
	if m.Total.Arrived == 0 || m.Total.Released == 0 {
		t.Fatalf("workload inert: %+v", m.Total)
	}
	if m.Total.Released != m.Total.Completed {
		t.Errorf("admitted jobs lost: released %d, completed %d", m.Total.Released, m.Total.Completed)
	}
	if m.Total.Arrived != m.Total.Released+m.Total.Skipped {
		t.Errorf("arrival accounting broken: arrived %d != released %d + skipped %d",
			m.Total.Arrived, m.Total.Released, m.Total.Skipped)
	}
	// The added tasks actually ran, and the removed period of p0 ended.
	if sim.Metrics().Task("t1").Released == 0 {
		t.Error("added task t1 never released a job")
	}
	assertNoStrandedLedgerEntries(t, sim)
	active := sim.TaskIDs()
	want := map[string]bool{"a0": true, "t1": true, "t0": true}
	if len(active) != len(want) {
		t.Errorf("active tasks = %v", active)
	}
	for _, id := range active {
		if !want[id] {
			t.Errorf("unexpected active task %q", id)
		}
	}
}

// assertNoStrandedLedgerEntries checks the ledger holds contributions only
// for tasks the binding still serves (removal must withdraw everything,
// including permanent per-task reservations).
func assertNoStrandedLedgerEntries(t *testing.T, sim *SimSystem) {
	t.Helper()
	if err := sim.Controller().Ledger().CheckInvariants(); err != nil {
		t.Errorf("ledger audit: %v", err)
	}
	active := make(map[string]bool)
	for _, id := range sim.TaskIDs() {
		active[id] = true
	}
	for _, ref := range sim.Controller().Ledger().ActiveJobs() {
		if !active[ref.Task] {
			t.Errorf("ledger holds contributions for removed task: %v", ref)
		}
	}
}

// TestSimLifecycleSentinels pins the typed error surface of the open-world
// API: duplicate adds, unknown removals and post-Stop calls discriminate
// with errors.Is.
func TestSimLifecycleSentinels(t *testing.T) {
	base := []*sched.Task{periodicTask("p0", 0, 10*time.Millisecond, 200*time.Millisecond)}
	sim := mustSim(t, simCfg(Config{AC: StrategyPerJob, IR: StrategyNone, LB: StrategyNone}, 1), base)

	if err := sim.AddTasks([]*sched.Task{periodicTask("p0", 0, time.Millisecond, 100*time.Millisecond)}); !errors.Is(err, ErrTaskExists) {
		t.Errorf("duplicate AddTasks error = %v, want ErrTaskExists", err)
	}
	if err := sim.RemoveTasks([]string{"ghost"}); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown RemoveTasks error = %v, want ErrUnknownTask", err)
	}
	if _, err := sim.SubmitBatch([]string{"p0", "ghost"}); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("SubmitBatch with unknown ID error = %v, want ErrUnknownTask", err)
	}
	// Validation is all-or-nothing: the valid half of the failing batch must
	// not have been injected.
	if snap := sim.Snapshot(); snap.Arrived != 0 {
		t.Errorf("failed batch injected arrivals: %+v", snap)
	}
	// Out-of-range processors and invalid tasks are rejected atomically.
	if err := sim.AddTasks([]*sched.Task{periodicTask("far", 7, time.Millisecond, 100*time.Millisecond)}); err == nil {
		t.Error("AddTasks accepted out-of-range processor")
	}
	if len(sim.TaskIDs()) != 1 {
		t.Errorf("failed AddTasks mutated the task set: %v", sim.TaskIDs())
	}

	if err := sim.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTasks(nil); !errors.Is(err, ErrStopped) {
		t.Errorf("AddTasks after Stop error = %v, want ErrStopped", err)
	}
	if err := sim.RemoveTasks([]string{"p0"}); !errors.Is(err, ErrStopped) {
		t.Errorf("RemoveTasks after Stop error = %v, want ErrStopped", err)
	}
	if _, err := sim.SubmitBatch([]string{"p0"}); !errors.Is(err, ErrStopped) {
		t.Errorf("SubmitBatch after Stop error = %v, want ErrStopped", err)
	}
	if _, err := sim.Watch(WatchOptions{}); !errors.Is(err, ErrStopped) {
		t.Errorf("Watch after Stop error = %v, want ErrStopped", err)
	}
}

// TestSimLifecyclePropertyRandomized is the open-world property test:
// randomized interleavings of AddTasks, RemoveTasks, Submit, SubmitBatch and
// mid-run Reconfigure leave the ledger audit clean (no stranded entries or
// signature groups — including none for removed tasks), never lose an
// admitted job, and keep the arrival accounting closed. Run under -race in
// CI alongside every other test.
func TestSimLifecyclePropertyRandomized(t *testing.T) {
	combos := []Config{
		{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone},
		{AC: StrategyPerTask, IR: StrategyPerTask, LB: StrategyPerTask},
		{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyPerJob},
	}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			combo := combos[rng.Intn(len(combos))]
			const procs = 3
			base := []*sched.Task{
				periodicTask("p0", 0, 8*time.Millisecond, 160*time.Millisecond, 1),
				periodicTask("p1", 1, 6*time.Millisecond, 240*time.Millisecond, 2),
				aperiodicTask("a0", 2, 5*time.Millisecond, 120*time.Millisecond),
			}
			horizon := 30 * time.Second
			sim := mustSim(t, SimConfig{Strategies: combo, NumProcs: procs, Horizon: horizon, Seed: seed}, base)

			watch, err := sim.Watch(WatchOptions{Buffer: 1 << 15})
			if err != nil {
				t.Fatal(err)
			}
			watchDone := make(chan struct{})
			orderOK := true
			go func() {
				defer close(watchDone)
				var last int64
				for ev := range watch.Events() {
					if ev.Seq <= last {
						orderOK = false
					}
					last = ev.Seq
				}
			}()

			// present tracks live task IDs as the scheduled ops will see them
			// (ops execute in schedule order at increasing times, so this
			// mirror is exact).
			present := map[string]bool{"p0": true, "p1": true, "a0": true}
			var pool []string // removable (non-base) task IDs in join order
			nextID := 0
			ops := 30 + rng.Intn(30)
			at := time.Duration(0)
			for i := 0; i < ops; i++ {
				at += time.Duration(rng.Int63n(int64(horizon) / int64(ops)))
				switch k := rng.Intn(10); {
				case k < 3: // tenant joins
					n := 1 + rng.Intn(3)
					tasks := make([]*sched.Task, 0, n)
					ids := make([]string, 0, n)
					for j := 0; j < n; j++ {
						id := fmt.Sprintf("dyn%d", nextID)
						nextID++
						dl := time.Duration(80+rng.Intn(160)) * time.Millisecond
						exec := time.Duration(1+rng.Intn(5)) * time.Millisecond
						proc := rng.Intn(procs)
						var task *sched.Task
						if rng.Intn(3) == 0 {
							task = periodicTask(id, proc, exec, dl)
						} else {
							task = aperiodicTask(id, proc, exec, dl)
						}
						tasks = append(tasks, task)
						ids = append(ids, id)
						present[id] = true
						pool = append(pool, id)
					}
					if err := sim.At(at, func() {
						if err := sim.AddTasks(tasks); err != nil {
							t.Errorf("AddTasks: %v", err)
						}
					}); err != nil {
						t.Fatal(err)
					}
				case k < 5: // oldest tenant leaves
					if len(pool) == 0 {
						continue
					}
					n := 1 + rng.Intn(min(2, len(pool)))
					ids := append([]string(nil), pool[:n]...)
					pool = pool[n:]
					for _, id := range ids {
						delete(present, id)
					}
					if err := sim.At(at, func() {
						if err := sim.RemoveTasks(ids); err != nil {
							t.Errorf("RemoveTasks(%v): %v", ids, err)
						}
					}); err != nil {
						t.Fatal(err)
					}
				case k < 6 && len(combos) > 0: // strategy swap rides along
					to := combos[rng.Intn(len(combos))]
					if err := sim.At(at, func() {
						if _, err := sim.ScheduleReconfig(sim.Engine().Now(), to); err != nil {
							t.Errorf("ScheduleReconfig: %v", err)
						}
					}); err != nil {
						t.Fatal(err)
					}
				default: // submissions at live tasks
					ids := make([]string, 0, 4)
					for id := range present {
						ids = append(ids, id)
						if len(ids) == 1+rng.Intn(4) {
							break
						}
					}
					if err := sim.At(at, func() {
						if len(ids) == 1 {
							if _, err := sim.Submit(ids[0]); err != nil {
								t.Errorf("Submit(%s): %v", ids[0], err)
							}
							return
						}
						if _, err := sim.SubmitBatch(ids); err != nil {
							t.Errorf("SubmitBatch(%v): %v", ids, err)
						}
					}); err != nil {
						t.Fatal(err)
					}
				}
			}

			m := sim.Run() // panics on ledger inconsistency
			if err := sim.Stop(); err != nil {
				t.Fatal(err)
			}
			<-watchDone
			if !orderOK {
				t.Error("watch stream delivered out of sequence order")
			}
			if m.Total.Released != m.Total.Completed {
				t.Errorf("admitted jobs lost: released %d, completed %d", m.Total.Released, m.Total.Completed)
			}
			if m.Total.Arrived != m.Total.Released+m.Total.Skipped {
				t.Errorf("arrival accounting broken: arrived %d != released %d + skipped %d",
					m.Total.Arrived, m.Total.Released, m.Total.Skipped)
			}
			assertNoStrandedLedgerEntries(t, sim)
		})
	}
}

// TestSimWatchOrderingAndFiltering pins the watch stream's contract: events
// deliver in strictly increasing Seq order, a job's Admitted precedes its
// Completed, lifecycle and reconfiguration events appear, and a kind filter
// delivers only the requested kinds.
func TestSimWatchOrderingAndFiltering(t *testing.T) {
	base := []*sched.Task{
		periodicTask("p0", 0, 10*time.Millisecond, 200*time.Millisecond),
		aperiodicTask("a0", 1, 5*time.Millisecond, 150*time.Millisecond),
	}
	from := Config{AC: StrategyPerTask, IR: StrategyNone, LB: StrategyNone}
	to := Config{AC: StrategyPerJob, IR: StrategyPerJob, LB: StrategyPerJob}
	sim := mustSim(t, simCfg(from, 2), base)

	all, err := sim.Watch(WatchOptions{Buffer: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	onlyTasks, err := sim.Watch(WatchOptions{
		Kinds:  []WatchKind{WatchTaskAdded, WatchTaskRemoved},
		Buffer: 256,
	})
	if err != nil {
		t.Fatal(err)
	}

	var allEvents, taskEvents []WatchEvent
	done := make(chan struct{}, 2)
	go func() {
		for ev := range all.Events() {
			allEvents = append(allEvents, ev)
		}
		done <- struct{}{}
	}()
	go func() {
		for ev := range onlyTasks.Events() {
			taskEvents = append(taskEvents, ev)
		}
		done <- struct{}{}
	}()

	if _, err := sim.ScheduleReconfig(10*time.Second, to); err != nil {
		t.Fatal(err)
	}
	if err := sim.At(15*time.Second, func() {
		if err := sim.AddTasks([]*sched.Task{aperiodicTask("t0", 0, 3*time.Millisecond, 100*time.Millisecond)}); err != nil {
			t.Errorf("AddTasks: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.At(22*time.Second, func() {
		if err := sim.RemoveTasks([]string{"t0"}); err != nil {
			t.Errorf("RemoveTasks: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if err := sim.Stop(); err != nil {
		t.Fatal(err)
	}
	<-done
	<-done

	if all.Dropped() != 0 {
		t.Errorf("watch stream dropped %d events", all.Dropped())
	}
	var lastSeq int64
	admitted := make(map[string]int) // task#job → index of Admitted
	counts := make(map[WatchKind]int)
	for i, ev := range allEvents {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d out of order: seq %d after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		counts[ev.Kind]++
		key := fmt.Sprintf("%s#%d", ev.Task, ev.Job)
		switch ev.Kind {
		case WatchAdmitted:
			admitted[key] = i
			if len(ev.Placement) == 0 {
				t.Errorf("admitted event without placement: %+v", ev)
			}
		case WatchCompleted:
			if _, ok := admitted[key]; !ok {
				t.Errorf("completion before admission for %s", key)
			}
		}
	}
	if counts[WatchAdmitted] == 0 || counts[WatchCompleted] == 0 {
		t.Errorf("missing job events: %v", counts)
	}
	if counts[WatchTaskAdded] != 1 || counts[WatchTaskRemoved] != 1 {
		t.Errorf("task lifecycle events = %v", counts)
	}
	if counts[WatchReconfigured] != 1 {
		t.Errorf("reconfigured events = %d, want 1", counts[WatchReconfigured])
	}
	for _, ev := range allEvents {
		if ev.Kind == WatchReconfigured && (ev.Config != to || ev.Epoch != 1) {
			t.Errorf("reconfigured event = %+v", ev)
		}
	}

	if len(taskEvents) != 2 {
		t.Fatalf("filtered stream got %d events, want 2: %+v", len(taskEvents), taskEvents)
	}
	if taskEvents[0].Kind != WatchTaskAdded || taskEvents[1].Kind != WatchTaskRemoved {
		t.Errorf("filtered kinds = %v, %v", taskEvents[0].Kind, taskEvents[1].Kind)
	}
	if taskEvents[0].Task != "t0" || taskEvents[1].Task != "t0" {
		t.Errorf("filtered tasks = %+v", taskEvents)
	}
}
