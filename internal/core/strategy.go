// Package core implements the paper's configurable middleware services —
// admission control (AC), idle resetting (IR), and load balancing (LB) —
// together with the task effector (TE) and subtask execution logic, bound to
// the discrete-event simulation substrate for the schedulability
// experiments. The same policy objects (Controller, IdleResetter) are reused
// by the live component binding in internal/live.
//
// Strategies follow Section 4 of the paper: the AC service tests
// admissibility per task or per job; the IR service resets the contributions
// of completed subjobs never, per task (aperiodic subjobs only), or per job
// (aperiodic and periodic subjobs); the LB service assigns subtasks to
// replicas never, per task, or per job. The AC-per-task/IR-per-job
// combination is contradictory and rejected, leaving 15 valid combinations.
package core

import (
	"fmt"
	"strings"
)

// Strategy is a configuration value for one of the three service axes.
type Strategy int

// Strategy values. The paper abbreviates them N, T and J. Enums start at one
// so an unset strategy is detectable.
const (
	// StrategyNone disables the service (valid for IR and LB only).
	StrategyNone Strategy = iota + 1
	// StrategyPerTask applies the service once per task, at first arrival.
	StrategyPerTask
	// StrategyPerJob applies the service at every job arrival.
	StrategyPerJob
)

// String returns the paper's single-letter abbreviation.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "N"
	case StrategyPerTask:
		return "T"
	case StrategyPerJob:
		return "J"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a paper abbreviation (N/T/J, case-insensitive, also
// accepting "none", "task"/"per-task", "job"/"per-job") to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "n", "none":
		return StrategyNone, nil
	case "t", "task", "per-task", "pertask", "pt":
		return StrategyPerTask, nil
	case "j", "job", "per-job", "perjob", "pj":
		return StrategyPerJob, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// Config selects one strategy per service axis. The paper denotes a
// configuration as a three-element tuple AC_IR_LB, e.g. "J_T_N" for
// admission control per job, idle resetting per task, and no load balancing.
type Config struct {
	// AC is the admission control strategy: StrategyPerTask or
	// StrategyPerJob. Admission control is always present; "none" is not an
	// option on this axis (Figure 2).
	AC Strategy
	// IR is the idle resetting strategy: StrategyNone, StrategyPerTask
	// (report completed aperiodic subjobs only) or StrategyPerJob (report
	// completed aperiodic and periodic subjobs).
	IR Strategy
	// LB is the load balancing strategy: StrategyNone, StrategyPerTask
	// (assign once at first arrival) or StrategyPerJob (reassign at every
	// job arrival).
	LB Strategy
}

// String formats the configuration as the paper's tuple, e.g. "T_N_J".
func (c Config) String() string {
	return c.AC.String() + "_" + c.IR.String() + "_" + c.LB.String()
}

// ParseConfig parses a tuple such as "J_T_N" (case-insensitive).
func ParseConfig(s string) (Config, error) {
	parts := strings.Split(strings.TrimSpace(s), "_")
	if len(parts) != 3 {
		return Config{}, fmt.Errorf("core: config %q is not a three-element AC_IR_LB tuple", s)
	}
	var c Config
	var err error
	if c.AC, err = ParseStrategy(parts[0]); err != nil {
		return Config{}, fmt.Errorf("core: config %q: AC: %w", s, err)
	}
	if c.IR, err = ParseStrategy(parts[1]); err != nil {
		return Config{}, fmt.Errorf("core: config %q: IR: %w", s, err)
	}
	if c.LB, err = ParseStrategy(parts[2]); err != nil {
		return Config{}, fmt.Errorf("core: config %q: LB: %w", s, err)
	}
	return c, c.Validate()
}

// Validate checks that the configuration is one of the paper's 15 reasonable
// combinations. Per Section 4.5, AC-per-task with IR-per-job is
// contradictory: per-job idle resetting removes the synthetic utilization of
// completed periodic subjobs from the admission controller, while per-task
// admission control requires that utilization to stay reserved so admitted
// periodic tasks can release jobs without re-testing.
func (c Config) Validate() error {
	switch c.AC {
	case StrategyPerTask, StrategyPerJob:
	case StrategyNone:
		return fmt.Errorf("core: config %s: admission control cannot be disabled", c)
	default:
		return fmt.Errorf("core: config %s: invalid AC strategy", c)
	}
	switch c.IR {
	case StrategyNone, StrategyPerTask, StrategyPerJob:
	default:
		return fmt.Errorf("core: config %s: invalid IR strategy", c)
	}
	switch c.LB {
	case StrategyNone, StrategyPerTask, StrategyPerJob:
	default:
		return fmt.Errorf("core: config %s: invalid LB strategy", c)
	}
	if c.AC == StrategyPerTask && c.IR == StrategyPerJob {
		return fmt.Errorf("core: config %s: per-task admission control contradicts per-job idle resetting", c)
	}
	return nil
}

// AllCombinations returns the 15 valid strategy combinations in the order
// the paper's figures use: T_N_N, T_N_T, T_N_J, T_T_N, ..., J_J_J.
func AllCombinations() []Config {
	acs := []Strategy{StrategyPerTask, StrategyPerJob}
	others := []Strategy{StrategyNone, StrategyPerTask, StrategyPerJob}
	out := make([]Config, 0, 15)
	for _, ac := range acs {
		for _, ir := range others {
			for _, lb := range others {
				c := Config{AC: ac, IR: ir, LB: lb}
				if c.Validate() == nil {
					out = append(out, c)
				}
			}
		}
	}
	return out
}
