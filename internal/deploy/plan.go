// Package deploy is the deployment and configuration engine, standing in
// for DAnCE (the OMG Light Weight Deployment and Configuration engine the
// paper extends): it models XML deployment plans, launches them through
// per-node NodeManager servants over the ORB, applies configProperty values
// through the components' Configurator interface, and wires the federated
// event channel connections — the pipeline of the paper's Figure 4.
package deploy

import (
	"encoding/xml"
	"fmt"
	"sort"
)

// TypeKindString is the CORBA TypeCode kind used for string-valued
// configuration properties, echoing the paper's Figure 4 XML fragment.
const TypeKindString = "tk_string"

// Plan is an XML deployment plan: nodes, component instances with
// configuration properties, and event-channel connections.
type Plan struct {
	// XMLName pins the root element name.
	XMLName xml.Name `xml:"deploymentPlan"`
	// Name labels the plan.
	Name string `xml:"name,attr"`
	// Nodes declares the participating nodes.
	Nodes []Node `xml:"node"`
	// Instances declares the component instances to install.
	Instances []Instance `xml:"instance"`
	// Connections declares event-channel federation routes.
	Connections []Connection `xml:"connection"`
}

// Node declares one node: a name, its ORB address, and the application
// processor index it represents (-1 for the task manager).
type Node struct {
	// Name is the node's unique name.
	Name string `xml:"name,attr"`
	// Address is the node's ORB endpoint ("host:port").
	Address string `xml:"address,attr"`
	// Processor is the application processor index, or -1 for the manager.
	Processor int `xml:"processor,attr"`
}

// Instance declares one component instance.
type Instance struct {
	// ID is the unique instance name (e.g. "Central-AC").
	ID string `xml:"id,attr"`
	// Node names the hosting node.
	Node string `xml:"node,attr"`
	// Implementation names the component implementation in the repository.
	Implementation string `xml:"implementation,attr"`
	// ConfigProperties configure the instance (the CCM Configurator path).
	ConfigProperties []ConfigProperty `xml:"configProperty"`
}

// ConfigProperty is one attribute setting, in the nested TypeCode shape the
// paper's Figure 4 shows:
//
//	<configProperty>
//	  <name>LB_Strategy</name>
//	  <value><type><kind>tk_string</kind></type><value><string>PT</string></value></value>
//	</configProperty>
type ConfigProperty struct {
	// Name is the attribute name.
	Name string `xml:"name"`
	// Value is the typed value envelope.
	Value PropertyValue `xml:"value"`
}

// PropertyValue is the typed value envelope.
type PropertyValue struct {
	// Type carries the TypeCode kind.
	Type PropertyType `xml:"type"`
	// Value carries the actual value.
	Value PropertyInner `xml:"value"`
}

// PropertyType is the TypeCode element.
type PropertyType struct {
	// Kind is the TypeCode kind (always tk_string here).
	Kind string `xml:"kind"`
}

// PropertyInner is the value element.
type PropertyInner struct {
	// String is the string form of the value.
	String string `xml:"string"`
}

// StringProperty builds a string-typed configProperty.
func StringProperty(name, value string) ConfigProperty {
	return ConfigProperty{
		Name: name,
		Value: PropertyValue{
			Type:  PropertyType{Kind: TypeKindString},
			Value: PropertyInner{String: value},
		},
	}
}

// Attrs flattens an instance's configProperties into the attribute map
// handed to Component.Configure.
func (i Instance) Attrs() map[string]string {
	out := make(map[string]string, len(i.ConfigProperties))
	for _, p := range i.ConfigProperties {
		out[p.Name] = p.Value.Value.String
	}
	return out
}

// Connection routes one event type from a source node's channel to a sink
// node's channel through the federation gateways.
type Connection struct {
	// EventType is the routed event type.
	EventType string `xml:"eventType"`
	// SourceNode and SinkNode name the endpoints.
	SourceNode string `xml:"sourceNode"`
	// SinkNode names the receiving node.
	SinkNode string `xml:"sinkNode"`
}

// Parse decodes and validates a plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("deploy: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Encode renders the plan as indented XML with a header.
func (p *Plan) Encode() ([]byte, error) {
	body, err := xml.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("deploy: encode plan: %w", err)
	}
	return append([]byte(xml.Header), append(body, '\n')...), nil
}

// Validate checks referential integrity: unique node and instance names,
// instances on declared nodes, connections between declared nodes.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("deploy: plan has no name")
	}
	nodes := make(map[string]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if n.Name == "" || n.Address == "" {
			return fmt.Errorf("deploy: node %+v missing name or address", n)
		}
		if nodes[n.Name] {
			return fmt.Errorf("deploy: duplicate node %q", n.Name)
		}
		nodes[n.Name] = true
	}
	ids := make(map[string]bool, len(p.Instances))
	for _, inst := range p.Instances {
		if inst.ID == "" || inst.Implementation == "" {
			return fmt.Errorf("deploy: instance %+v missing id or implementation", inst)
		}
		if ids[inst.ID] {
			return fmt.Errorf("deploy: duplicate instance %q", inst.ID)
		}
		ids[inst.ID] = true
		if !nodes[inst.Node] {
			return fmt.Errorf("deploy: instance %q on undeclared node %q", inst.ID, inst.Node)
		}
	}
	for _, c := range p.Connections {
		if c.EventType == "" {
			return fmt.Errorf("deploy: connection with empty event type")
		}
		if !nodes[c.SourceNode] || !nodes[c.SinkNode] {
			return fmt.Errorf("deploy: connection %s: %q -> %q references undeclared node",
				c.EventType, c.SourceNode, c.SinkNode)
		}
		if c.SourceNode == c.SinkNode {
			return fmt.Errorf("deploy: connection %s: source and sink are both %q (local delivery needs no connection)",
				c.EventType, c.SourceNode)
		}
	}
	return nil
}

// NodeByName finds a declared node.
func (p *Plan) NodeByName(name string) (Node, bool) {
	for _, n := range p.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// InstancesOn returns the instances hosted on a node, in plan order.
func (p *Plan) InstancesOn(node string) []Instance {
	var out []Instance
	for _, inst := range p.Instances {
		if inst.Node == node {
			out = append(out, inst)
		}
	}
	return out
}

// NodeNames returns the declared node names, sorted.
func (p *Plan) NodeNames() []string {
	out := make([]string, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}
