package deploy

import (
	"context"
	"fmt"
	"time"

	"repro/internal/orb"
)

// Launcher executes deployment plans: DAnCE's Plan Launcher + Execution
// Manager. It talks to each node's NodeManager servant over the given ORB.
type Launcher struct {
	orb     *orb.ORB
	timeout time.Duration
}

// NewLauncher returns a launcher using the ORB for node invocations.
func NewLauncher(o *orb.ORB) *Launcher {
	return &Launcher{orb: o, timeout: 10 * time.Second}
}

// Execute deploys the plan: it pings every node, installs every instance in
// plan order, wires every connection, then activates every node's
// container. Any failure aborts with a descriptive error; the paper's
// deployment model treats a failed deployment as fatal at system
// initialization time.
func (l *Launcher) Execute(ctx context.Context, p *Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	addr := make(map[string]string, len(p.Nodes))
	for _, n := range p.Nodes {
		addr[n.Name] = n.Address
		if err := l.invoke(ctx, n.Address, opPing, nil); err != nil {
			return fmt.Errorf("deploy: node %s unreachable: %w", n.Name, err)
		}
	}
	for _, inst := range p.Instances {
		req := InstallRequest{
			ID:             inst.ID,
			Implementation: inst.Implementation,
			Attrs:          inst.Attrs(),
		}
		body, err := gobEncode(req)
		if err != nil {
			return err
		}
		if err := l.invoke(ctx, addr[inst.Node], opInstall, body); err != nil {
			return fmt.Errorf("deploy: install %s on %s: %w", inst.ID, inst.Node, err)
		}
	}
	for _, conn := range p.Connections {
		req := ConnectRequest{EventType: conn.EventType, SinkAddr: addr[conn.SinkNode]}
		body, err := gobEncode(req)
		if err != nil {
			return err
		}
		if err := l.invoke(ctx, addr[conn.SourceNode], opConnect, body); err != nil {
			return fmt.Errorf("deploy: connect %s %s->%s: %w", conn.EventType, conn.SourceNode, conn.SinkNode, err)
		}
	}
	for _, n := range p.Nodes {
		if err := l.invoke(ctx, n.Address, opActivate, nil); err != nil {
			return fmt.Errorf("deploy: activate node %s: %w", n.Name, err)
		}
	}
	return nil
}

// RedeployNode re-deploys one node of an already-running plan: it pings the
// node, installs every plan instance hosted there, wires the plan
// connections it sources, re-points peers' routes that sink into it (their
// gateways learned a dead predecessor's address), and activates the
// container. The node-recovery path uses it after replacing a failed node
// with a fresh one at a new address — the plan, kept truthful by Delta.Apply
// across reconfigurations and failovers, is the installation source.
func (l *Launcher) RedeployNode(ctx context.Context, p *Plan, node string) error {
	addr := make(map[string]string, len(p.Nodes))
	found := false
	for _, n := range p.Nodes {
		addr[n.Name] = n.Address
		if n.Name == node {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("deploy: redeploy: node %q not in plan", node)
	}
	if err := l.invoke(ctx, addr[node], opPing, nil); err != nil {
		return fmt.Errorf("deploy: redeploy: node %s unreachable: %w", node, err)
	}
	for _, inst := range p.Instances {
		if inst.Node != node {
			continue
		}
		req := InstallRequest{ID: inst.ID, Implementation: inst.Implementation, Attrs: inst.Attrs()}
		body, err := gobEncode(req)
		if err != nil {
			return err
		}
		if err := l.invoke(ctx, addr[node], opInstall, body); err != nil {
			return fmt.Errorf("deploy: redeploy: install %s on %s: %w", inst.ID, node, err)
		}
	}
	for _, conn := range p.Connections {
		if conn.SourceNode != node && conn.SinkNode != node {
			continue
		}
		req := ConnectRequest{EventType: conn.EventType, SinkAddr: addr[conn.SinkNode]}
		body, err := gobEncode(req)
		if err != nil {
			return err
		}
		if err := l.invoke(ctx, addr[conn.SourceNode], opConnect, body); err != nil {
			return fmt.Errorf("deploy: redeploy: connect %s %s->%s: %w", conn.EventType, conn.SourceNode, conn.SinkNode, err)
		}
	}
	if err := l.invoke(ctx, addr[node], opActivate, nil); err != nil {
		return fmt.Errorf("deploy: redeploy: activate node %s: %w", node, err)
	}
	return nil
}

// Ping probes one node's NodeManager liveness over the ORB — the health
// tooling's per-node probe.
func (l *Launcher) Ping(ctx context.Context, addr string) error {
	return l.invoke(ctx, addr, opPing, nil)
}

// invoke performs one NodeManager call with the launcher timeout.
func (l *Launcher) invoke(ctx context.Context, addr, op string, body []byte) error {
	_, err := l.invokeReply(ctx, addr, NodeManagerKey, op, body)
	return err
}

// invokeReply performs one call against an arbitrary servant key with the
// launcher timeout and returns the reply bytes (the reconfiguration
// facet's Quiesce/Resume operations answer with values).
func (l *Launcher) invokeReply(ctx context.Context, addr, key, op string, body []byte) ([]byte, error) {
	cctx, cancel := context.WithTimeout(ctx, l.timeout)
	defer cancel()
	return l.orb.Invoke(cctx, addr, key, op, body)
}
