package deploy

import (
	"strings"
	"testing"
)

func samplePlan() *Plan {
	return &Plan{
		Name: "test",
		Nodes: []Node{
			{Name: "manager", Address: "127.0.0.1:9000", Processor: -1},
			{Name: "app0", Address: "127.0.0.1:9001", Processor: 0},
		},
		Instances: []Instance{
			{
				ID: "Central-AC", Node: "manager", Implementation: "AdmissionController",
				ConfigProperties: []ConfigProperty{StringProperty("LB_Strategy", "PT")},
			},
			{ID: "TE-0", Node: "app0", Implementation: "TaskEffector"},
		},
		Connections: []Connection{
			{EventType: "TaskArrive", SourceNode: "app0", SinkNode: "manager"},
		},
	}
}

func TestPlanEncodeParseRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 4 nested configProperty shape must appear.
	for _, want := range []string{
		"<deploymentPlan", `id="Central-AC"`, "<configProperty>",
		"<name>LB_Strategy</name>", "<kind>tk_string</kind>", "<string>PT</string>",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded plan missing %q:\n%s", want, data)
		}
	}
	p2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name != p.Name || len(p2.Nodes) != 2 || len(p2.Instances) != 2 || len(p2.Connections) != 1 {
		t.Errorf("round trip = %+v", p2)
	}
	if got := p2.Instances[0].Attrs()["LB_Strategy"]; got != "PT" {
		t.Errorf("Attrs()[LB_Strategy] = %q, want PT", got)
	}
}

func TestPlanValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"no name", func(p *Plan) { p.Name = "" }},
		{"duplicate node", func(p *Plan) { p.Nodes = append(p.Nodes, p.Nodes[0]) }},
		{"node missing address", func(p *Plan) { p.Nodes[0].Address = "" }},
		{"duplicate instance", func(p *Plan) { p.Instances = append(p.Instances, p.Instances[0]) }},
		{"instance on unknown node", func(p *Plan) { p.Instances[0].Node = "ghost" }},
		{"instance missing impl", func(p *Plan) { p.Instances[0].Implementation = "" }},
		{"connection empty type", func(p *Plan) { p.Connections[0].EventType = "" }},
		{"connection unknown node", func(p *Plan) { p.Connections[0].SinkNode = "ghost" }},
		{"connection self loop", func(p *Plan) { p.Connections[0].SinkNode = "app0" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := samplePlan()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted broken plan")
			}
		})
	}
}

func TestPlanParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not xml at all <")); err == nil {
		t.Error("Parse accepted garbage")
	}
	if _, err := Parse([]byte("<deploymentPlan/>")); err == nil {
		t.Error("Parse accepted nameless plan")
	}
}

func TestPlanQueries(t *testing.T) {
	p := samplePlan()
	if _, ok := p.NodeByName("manager"); !ok {
		t.Error("NodeByName(manager) not found")
	}
	if _, ok := p.NodeByName("ghost"); ok {
		t.Error("NodeByName(ghost) found")
	}
	if got := p.InstancesOn("manager"); len(got) != 1 || got[0].ID != "Central-AC" {
		t.Errorf("InstancesOn(manager) = %+v", got)
	}
	names := p.NodeNames()
	if len(names) != 2 || names[0] != "app0" || names[1] != "manager" {
		t.Errorf("NodeNames() = %v", names)
	}
}
