package deploy

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// This file is the reconfiguration half of the deployment engine: instead
// of a full deployment plan (which tears nothing down), the configuration
// engine emits a Delta — the minimal set of per-instance attribute updates
// and added federation routes that move a *running* deployment from one
// strategy combination to another — and the launcher executes it as an
// epoch-versioned two-phase transaction against the live nodes.

// InstanceUpdate is one component instance's live attribute change.
type InstanceUpdate struct {
	// ID is the instance name (e.g. "Central-AC").
	ID string
	// Node names the hosting node.
	Node string
	// Attrs are the attribute values to apply through the component's
	// Reconfigure lifecycle stage. The launcher stamps the coordination
	// epoch in before sending.
	Attrs map[string]string
}

// Delta is a reconfiguration transaction against a running deployment.
type Delta struct {
	// Plan is the running deployment the delta applies to; it supplies the
	// node addresses.
	Plan *Plan
	// FromConfig and ToConfig are the AC_IR_LB tuples before and after. A
	// task-set delta (AddTasks/RemoveTasks) leaves them equal.
	FromConfig, ToConfig string
	// Installs are new component instances the delta deploys onto running
	// nodes (the open-world AddTasks path installs the added tasks' subtask
	// components). They install — and activate, the containers being live —
	// under the quiesce, before any attribute update, so by the time the
	// task effectors learn the new tasks their subtask components exist.
	Installs []Instance
	// Updates are the per-instance attribute changes, applied in order. The
	// manager-hosted instances (Central-AC) come first so the policy object
	// swaps before the effector caches reset.
	Updates []InstanceUpdate
	// Connections are federation routes the new configuration needs that
	// the running plan does not have (e.g. IdleReset routes when idle
	// resetting turns on, or Trigger routes for an added task's stage
	// chain). Existing routes are never removed: a stale route only forwards
	// events nobody publishes.
	Connections []Connection
	// SkipNodes names nodes the executor must not RPC — a failover delta
	// lists the dead node here. Updates, installs and connections touching a
	// skipped node are still folded into the plan by Apply (the plan keeps
	// describing the intended deployment, which is what a later node
	// recovery reinstalls from); they are simply not sent anywhere.
	SkipNodes []string
	// ManagerNode names the node hosting the admission controller's
	// reconfiguration facet, and ManagerKey its ORB object key.
	ManagerNode string
	ManagerKey  string
	// EpochAttr is the attribute name under which the launcher stamps the
	// coordination epoch into every update.
	EpochAttr string
}

// Apply folds the delta into the plan in memory, so a plan kept alongside a
// running deployment continues to describe it after the reconfiguration:
// installed instances and added connections are appended and matching
// configProperty values are replaced. The epoch attribute is not persisted —
// it is coordination state, not configuration.
func (d *Delta) Apply(p *Plan) {
	p.Instances = append(p.Instances, d.Installs...)
	for _, up := range d.Updates {
		for i := range p.Instances {
			if p.Instances[i].ID != up.ID {
				continue
			}
			for name, value := range up.Attrs {
				if name == d.EpochAttr {
					continue
				}
				replaced := false
				for j := range p.Instances[i].ConfigProperties {
					if p.Instances[i].ConfigProperties[j].Name == name {
						p.Instances[i].ConfigProperties[j] = StringProperty(name, value)
						replaced = true
						break
					}
				}
				if !replaced {
					p.Instances[i].ConfigProperties = append(p.Instances[i].ConfigProperties, StringProperty(name, value))
				}
			}
		}
	}
	p.Connections = append(p.Connections, d.Connections...)
}

// ReconfigOutcome reports one executed reconfiguration transaction.
type ReconfigOutcome struct {
	// Epoch is the epoch the deployment entered.
	Epoch int64
	// Deferred is the number of arrivals the admission controller buffered
	// during the quiesce and replayed under the new configuration.
	Deferred int64
	// QuiesceDuration is the wall-clock span from Quiesce to Resume.
	QuiesceDuration time.Duration
	// NodeTimings records per-node swap RPC time (attribute updates plus
	// route wiring), keyed by node name.
	NodeTimings map[string]time.Duration
}

// ExecuteReconfig runs the delta against the live deployment as the
// two-phase protocol: quiesce admission on the manager, apply every
// instance update (stamped with the new epoch) through the NodeManagers'
// Reconfigure operation, wire the added federation routes, then resume —
// replaying the arrivals buffered meanwhile under the new configuration.
// On a mid-transaction failure admission is resumed before returning, so a
// failed swap degrades to a partially-updated but live deployment rather
// than a wedged one; the error reports the failing step.
func (l *Launcher) ExecuteReconfig(ctx context.Context, d *Delta) (*ReconfigOutcome, error) {
	if d == nil || d.Plan == nil {
		return nil, fmt.Errorf("deploy: reconfig: nil delta or plan")
	}
	addr := make(map[string]string, len(d.Plan.Nodes))
	for _, n := range d.Plan.Nodes {
		addr[n.Name] = n.Address
	}
	managerAddr, ok := addr[d.ManagerNode]
	if !ok {
		return nil, fmt.Errorf("deploy: reconfig: manager node %q not in plan", d.ManagerNode)
	}
	skip := make(map[string]bool, len(d.SkipNodes))
	for _, n := range d.SkipNodes {
		skip[n] = true
	}
	if skip[d.ManagerNode] {
		return nil, fmt.Errorf("deploy: reconfig: manager node %q cannot be skipped", d.ManagerNode)
	}

	// Phase one: quiesce admission; the reply names the epoch the swap
	// enters.
	start := time.Now()
	reply, err := l.invokeReply(ctx, managerAddr, d.ManagerKey, "Quiesce", nil)
	if err != nil {
		return nil, fmt.Errorf("deploy: reconfig: quiesce: %w", err)
	}
	var epoch int64
	if err := gobDecode(reply, &epoch); err != nil {
		return nil, fmt.Errorf("deploy: reconfig: quiesce reply: %w", err)
	}

	out := &ReconfigOutcome{Epoch: epoch, NodeTimings: make(map[string]time.Duration)}
	resume := func() (int64, error) {
		reply, err := l.invokeReply(ctx, managerAddr, d.ManagerKey, "Resume", nil)
		if err != nil {
			return 0, fmt.Errorf("deploy: reconfig: resume: %w", err)
		}
		var n int64
		if err := gobDecode(reply, &n); err != nil {
			return 0, fmt.Errorf("deploy: reconfig: resume reply: %w", err)
		}
		return n, nil
	}
	fail := func(stepErr error) (*ReconfigOutcome, error) {
		// Never leave admission quiesced: a failed swap must degrade to a
		// live system.
		if _, rerr := resume(); rerr != nil {
			return nil, fmt.Errorf("%w (and resume failed: %v)", stepErr, rerr)
		}
		return nil, stepErr
	}

	// Phase two: install any new component instances first. They activate
	// immediately (the containers are live) but stay inert — no effector or
	// admission controller knows their tasks until the attribute updates
	// land, so nothing routes events to them yet.
	for _, inst := range d.Installs {
		if skip[inst.Node] {
			continue
		}
		req := InstallRequest{ID: inst.ID, Implementation: inst.Implementation, Attrs: inst.Attrs()}
		body, err := gobEncode(req)
		if err != nil {
			return fail(err)
		}
		t0 := time.Now()
		if err := l.invoke(ctx, addr[inst.Node], opInstall, body); err != nil {
			return fail(fmt.Errorf("deploy: reconfig: install %s on %s: %w", inst.ID, inst.Node, err))
		}
		out.NodeTimings[inst.Node] += time.Since(t0)
	}
	// Then wire the added federation routes BEFORE enabling the new
	// strategies. The reverse order has a loss window — a component whose
	// new strategy starts emitting (an idle resetter's first report, say)
	// before its route lands pushes into a gateway with no sink and the
	// event vanishes. Wiring first is strictly safe: the gateway ignores
	// re-adds and the still-old-strategy components emit nothing new.
	for _, conn := range d.Connections {
		if skip[conn.SourceNode] || skip[conn.SinkNode] {
			continue
		}
		req := ConnectRequest{EventType: conn.EventType, SinkAddr: addr[conn.SinkNode]}
		body, err := gobEncode(req)
		if err != nil {
			return fail(err)
		}
		t0 := time.Now()
		if err := l.invoke(ctx, addr[conn.SourceNode], opConnect, body); err != nil {
			return fail(fmt.Errorf("deploy: reconfig: connect %s %s->%s: %w", conn.EventType, conn.SourceNode, conn.SinkNode, err))
		}
		out.NodeTimings[conn.SourceNode] += time.Since(t0)
	}
	// Then swap strategies on every node, stamped with the epoch.
	for _, up := range d.Updates {
		if skip[up.Node] {
			continue
		}
		attrs := make(map[string]string, len(up.Attrs)+1)
		for k, v := range up.Attrs {
			attrs[k] = v
		}
		if d.EpochAttr != "" {
			attrs[d.EpochAttr] = strconv.FormatInt(epoch, 10)
		}
		body, err := gobEncode(ReconfigRequest{ID: up.ID, Attrs: attrs})
		if err != nil {
			return fail(err)
		}
		t0 := time.Now()
		if err := l.invoke(ctx, addr[up.Node], opReconfigure, body); err != nil {
			return fail(fmt.Errorf("deploy: reconfig: %s on %s: %w", up.ID, up.Node, err))
		}
		out.NodeTimings[up.Node] += time.Since(t0)
	}

	// Phase two's tail: resume admission; deferred arrivals replay under
	// the new configuration.
	deferred, err := resume()
	if err != nil {
		return nil, err
	}
	out.Deferred = deferred
	out.QuiesceDuration = time.Since(start)
	return out, nil
}
