package deploy

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/ccm"
	"repro/internal/eventchan"
	"repro/internal/orb"
)

// NodeManagerKey is the ORB object key every node's manager servant binds.
const NodeManagerKey = "nodemanager"

// NodeManager operations.
const (
	opInstall     = "Install"
	opConnect     = "Connect"
	opActivate    = "Activate"
	opPing        = "Ping"
	opReconfigure = "Reconfigure"
)

// InstallRequest asks a node to instantiate, configure and register one
// component (DAnCE's NodeImplementationInfo → NodeApplication →
// set_configuration path).
type InstallRequest struct {
	// ID is the instance name.
	ID string
	// Implementation names the factory in the node's component repository.
	Implementation string
	// Attrs are the flattened configProperty values.
	Attrs map[string]string
}

// ReconfigRequest asks a node to apply a live attribute change to one
// activated instance through the component's Reconfigure lifecycle stage.
type ReconfigRequest struct {
	// ID is the instance name.
	ID string
	// Attrs are the attribute values to change (including the coordination
	// epoch stamped by the launcher).
	Attrs map[string]string
}

// ConnectRequest asks a node's gateway to forward an event type to a peer.
type ConnectRequest struct {
	// EventType is the routed type.
	EventType string
	// SinkAddr is the peer channel's ORB address.
	SinkAddr string
}

// NodeManager is the per-node deployment servant: the counterpart of
// DAnCE's NodeApplicationManager + NodeApplication, installing components
// from the local repository into the local container.
type NodeManager struct {
	registry  *ccm.Registry
	container *ccm.Container
	channel   *eventchan.Channel

	mu        sync.Mutex
	activated bool
}

// NewNodeManager builds the servant and registers it on the node's ORB.
func NewNodeManager(o *orb.ORB, registry *ccm.Registry, container *ccm.Container, channel *eventchan.Channel) *NodeManager {
	nm := &NodeManager{registry: registry, container: container, channel: channel}
	o.RegisterServant(NodeManagerKey, nm.dispatch)
	return nm
}

// dispatch serves the NodeManager operations.
func (nm *NodeManager) dispatch(op string, arg []byte) ([]byte, error) {
	switch op {
	case opPing:
		return []byte("pong"), nil
	case opInstall:
		var req InstallRequest
		if err := gobDecode(arg, &req); err != nil {
			return nil, err
		}
		return nil, nm.install(req)
	case opConnect:
		var req ConnectRequest
		if err := gobDecode(arg, &req); err != nil {
			return nil, err
		}
		nm.channel.AddRemoteSink(req.EventType, req.SinkAddr)
		return nil, nil
	case opReconfigure:
		var req ReconfigRequest
		if err := gobDecode(arg, &req); err != nil {
			return nil, err
		}
		nm.mu.Lock()
		activated := nm.activated
		nm.mu.Unlock()
		if !activated {
			return nil, fmt.Errorf("deploy: nodemanager: reconfigure %s before activation", req.ID)
		}
		return nil, nm.container.Reconfigure(req.ID, req.Attrs)
	case opActivate:
		nm.mu.Lock()
		defer nm.mu.Unlock()
		if nm.activated {
			return nil, nil
		}
		if err := nm.container.Activate(); err != nil {
			return nil, err
		}
		nm.activated = true
		return nil, nil
	default:
		return nil, fmt.Errorf("deploy: nodemanager: unknown operation %q", op)
	}
}

// install creates and configures one component instance.
func (nm *NodeManager) install(req InstallRequest) error {
	comp, err := nm.registry.Create(req.Implementation)
	if err != nil {
		return err
	}
	return nm.container.Install(req.ID, comp, req.Attrs)
}

// gobEncode marshals a deployment request.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("deploy: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// gobDecode unmarshals a deployment request.
func gobDecode(b []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(out); err != nil {
		return fmt.Errorf("deploy: decode %T: %w", out, err)
	}
	return nil
}
