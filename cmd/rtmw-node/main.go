// Command rtmw-node runs one middleware node: an ORB endpoint, a federated
// event channel, an executor, an empty component container, and the
// NodeManager deployment servant. Both application processors and the
// central task manager run this daemon; the deployment plan decides which
// components each node hosts.
//
// Usage:
//
//	rtmw-node -name app0 -proc 0 -listen 127.0.0.1:7001
//	rtmw-node -name manager -proc -1 -listen 127.0.0.1:7000
//
// The process serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ccm"
	"repro/internal/deploy"
	"repro/internal/live"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		name      = flag.String("name", "node", "node name")
		proc      = flag.Int("proc", 0, "application processor index (-1 for the task manager)")
		listen    = flag.String("listen", "127.0.0.1:0", "ORB listen address")
		execScale = flag.Float64("execscale", 1.0, "subtask execution time multiplier")
	)
	flag.Parse()

	node, err := live.NewNode(*name, *proc, *listen, *execScale)
	if err != nil {
		return err
	}
	registry := ccm.NewRegistry()
	if err := live.Register(registry); err != nil {
		return err
	}
	deploy.NewNodeManager(node.ORB, registry, node.Container, node.Channel)

	fmt.Printf("rtmw-node %s (processor %d) listening on %s\n", *name, *proc, node.Addr)
	fmt.Println("waiting for deployment; press Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("shutting down")
	return node.Close()
}
