// Command rtmw-node runs one middleware node: an ORB endpoint, a federated
// event channel, an executor, an empty component container, and the
// NodeManager deployment servant. Both application processors and the
// central task manager run this daemon; the deployment plan decides which
// components each node hosts.
//
// Usage:
//
//	rtmw-node -name app0 -proc 0 -listen 127.0.0.1:7001
//	rtmw-node -name manager -proc -1 -listen 127.0.0.1:7000
//
// The process serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ccm"
	"repro/internal/deploy"
	"repro/internal/eventchan"
	"repro/internal/live"
	"repro/internal/orb"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		name       = flag.String("name", "node", "node name")
		proc       = flag.Int("proc", 0, "application processor index (-1 for the task manager)")
		listen     = flag.String("listen", "127.0.0.1:0", "ORB listen address")
		execScale  = flag.Float64("execscale", 1.0, "subtask execution time multiplier")
		sendQueue  = flag.Int("sendqueue", orb.DefaultSendQueueDepth, "ORB per-connection send queue depth (frames)")
		wbatch     = flag.Int("writebatch", orb.DefaultWriteBatch, "max ORB frames coalesced per flush")
		sinkQueue  = flag.Int("sinkqueue", eventchan.DefaultSinkQueueDepth, "event gateway pending queue depth per peer (events)")
		sinkBatch  = flag.Int("sinkbatch", eventchan.DefaultSinkBatch, "max events coalesced per federated push")
		sinkPolicy = flag.String("sinkpolicy", "block", "full-sink overflow policy: block (throttle pushers) or drop (shed with backpressure error)")
	)
	flag.Parse()

	policy := eventchan.Block
	switch *sinkPolicy {
	case "block":
	case "drop":
		policy = eventchan.DropNewest
	default:
		return fmt.Errorf("invalid -sinkpolicy %q (want block or drop)", *sinkPolicy)
	}

	node, err := live.NewNode(*name, *proc, *listen, *execScale,
		live.WithORBOptions(orb.WithSendQueueDepth(*sendQueue), orb.WithWriteBatch(*wbatch)),
		live.WithChannelOptions(eventchan.WithSinkQueueDepth(*sinkQueue), eventchan.WithSinkBatch(*sinkBatch), eventchan.WithSinkPolicy(policy)),
	)
	if err != nil {
		return err
	}
	registry := ccm.NewRegistry()
	if err := live.Register(registry); err != nil {
		return err
	}
	deploy.NewNodeManager(node.ORB, registry, node.Container, node.Channel)

	fmt.Printf("rtmw-node %s (processor %d) listening on %s\n", *name, *proc, node.Addr)
	fmt.Printf("event plane: sendqueue=%d writebatch=%d sinkqueue=%d sinkbatch=%d\n",
		*sendQueue, *wbatch, *sinkQueue, *sinkBatch)
	fmt.Println("waiting for deployment; press Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("shutting down")
	ts := node.TransportStats()
	fmt.Printf("transport: %d frames in %d flushes (%.1f frames/flush), %d bytes, %d overloads; %d events pushed, %d forwarded in %d batches (%d dropped)\n",
		ts.ORB.FramesSent, ts.ORB.Flushes, framesPerFlush(ts.ORB.FramesSent, ts.ORB.Flushes),
		ts.ORB.BytesSent, ts.ORB.Overloads,
		ts.Events.Pushed, ts.Events.Forwarded, ts.Events.ForwardBatches, ts.Events.ForwardDropped)
	return node.Close()
}

// framesPerFlush guards the batching-factor division.
func framesPerFlush(frames, flushes int64) float64 {
	if flushes == 0 {
		return 0
	}
	return float64(frames) / float64(flushes)
}
