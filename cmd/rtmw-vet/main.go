// rtmw-vet runs the repo's custom invariant analyzers (internal/analysis)
// over Go packages, go-vet style:
//
//	go run ./cmd/rtmw-vet ./...
//	go run ./cmd/rtmw-vet -only lockorder,atomicfield ./internal/sched
//	go run ./cmd/rtmw-vet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. The binary is
// built from the repo itself — there is no external toolchain dependency to
// pin; CI runs it in the lint job.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rtmw-vet [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Suite
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := analysis.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "rtmw-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtmw-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtmw-vet: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtmw-vet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "rtmw-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
