// Command rtmw-bench regenerates the paper's evaluation artifacts:
//
//	rtmw-bench table1            Table 1 criteria → strategy mapping
//	rtmw-bench figure5           accepted utilization ratio, balanced workloads
//	rtmw-bench figure6           accepted utilization ratio, imbalanced workloads
//	rtmw-bench overhead          Figure 7/8 service overhead table (live, TCP)
//	rtmw-bench ablation          AUB vs deferrable-server admission (Section 2)
//	rtmw-bench scale             large-scenario throughput sweep (pooled DES core)
//	rtmw-bench reconfig          mid-run strategy swap: quiesce latency + zero job loss
//	rtmw-bench churn             open-world task churn: AddTasks/RemoveTasks under load (sim sweep + live smoke)
//	rtmw-bench failover          kill-a-node chaos sweep: heartbeat detection, zero-loss failover, recovery (live)
//	rtmw-bench autopilot         closed-loop controller vs every static combination on regime-change scenarios
//	rtmw-bench scenario          declarative scenario spec against sim and/or live bindings
//	rtmw-bench all               everything above (except scenario, which needs a spec)
//
// Figure runs accept -sets and -horizon; overhead accepts -duration and
// -pings; the scale sweep accepts -points (PROCSxTASKS pairs) and -horizon
// (defaulting to 2s of virtual time — its workloads use shorter deadlines
// than the figures). The figure and ablation sweeps fan their independent
// trials over -parallel workers (results are bit-identical to a serial run).
// Output goes to stdout; add -csv for machine-readable series or -json for
// structured documents. With -json, the JSON documents are the only stdout
// output (the human-readable tables move to stderr), so stdout redirects to
// a valid .json file.
//
// The scenario subcommand takes its own flags after the subcommand name:
//
//	rtmw-bench scenario -spec scenarios/flashcrowd.json -binding both
//	rtmw-bench scenario -spec scenarios/tenant-churn.json -binding sim -record run.jsonl
//	rtmw-bench scenario -replay run.jsonl -json
//
// It exits non-zero when any binding violates the spec's invariant block. A
// missing or unknown subcommand prints usage and exits 2, so a misspelled
// CI invocation fails instead of silently no-opping.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// errUsage marks invocation errors (bad subcommand, bad flags): main prints
// usage and exits 2, distinguishing caller mistakes from run failures.
var errUsage = errors.New("usage")

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
			flag.Usage()
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func run() error {
	var (
		sets     = flag.Int("sets", 10, "random task sets per figure point")
		horizon  = flag.Duration("horizon", 5*time.Minute, "virtual workload duration per run")
		duration = flag.Duration("duration", 5*time.Second, "live overhead run duration")
		pings    = flag.Int("pings", 1000, "event round trips for the communication-delay estimate")
		parallel = flag.Int("parallel", 1, "concurrent trial workers for figure/ablation sweeps (0 = one per CPU)")
		points   = flag.String("points", "5x100,50x10000,200x50000", "scale sweep points as PROCSxTASKS pairs")
		fromCfg  = flag.String("from", "T_N_N", "reconfig experiment: starting AC_IR_LB combination")
		toCfg    = flag.String("to", "J_J_J", "reconfig experiment: target AC_IR_LB combination")
		noLive   = flag.Bool("nolive", false, "churn experiment: skip the live-cluster smoke")
		csv      = flag.Bool("csv", false, "also print CSV series for figures")
		jsonOut  = flag.Bool("json", false, "also print JSON documents for figures, the ablation, and the scale sweep")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		return fmt.Errorf("%w: missing subcommand: table1 | figure5 | figure6 | overhead | ablation | scale | reconfig | churn | failover | autopilot | scenario | all", errUsage)
	}
	horizonSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "horizon" {
			horizonSet = true
		}
	})

	workers := *parallel
	if workers < 1 {
		workers = experiments.ResolveWorkers(workers)
	}
	figOpts := experiments.FigureOptions{Sets: *sets, Horizon: *horizon, Workers: workers}
	ovOpts := experiments.OverheadOptions{Duration: *duration, PingCount: *pings}

	// With -json, human-readable tables move to stderr so stdout stays a
	// valid JSON stream (the CI perf-trajectory artifact redirects it).
	tableW := io.Writer(os.Stdout)
	if *jsonOut {
		tableW = os.Stderr
	}

	renderFigure := func(name, title string, run func(experiments.FigureOptions) ([]experiments.ComboResult, error)) error {
		results, err := run(figOpts)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderFigure(title, results))
		if *csv {
			fmt.Fprintln(tableW, experiments.RenderCSV(results))
		}
		if *jsonOut {
			doc, err := experiments.RenderFigureJSON(name, results)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		return nil
	}
	runFigure5 := func() error {
		return renderFigure("figure5",
			fmt.Sprintf("Figure 5: accepted utilization ratio, random balanced workloads (%d sets, %v, %d workers)", *sets, *horizon, workers),
			experiments.RunFigure5)
	}
	runFigure6 := func() error {
		return renderFigure("figure6",
			fmt.Sprintf("Figure 6: accepted utilization ratio, imbalanced workloads (%d sets, %v, %d workers)", *sets, *horizon, workers),
			experiments.RunFigure6)
	}
	runOverhead := func() error {
		fmt.Fprintf(os.Stderr, "running live overhead measurement (%v + %d pings)...\n", *duration, *pings)
		rep, err := experiments.RunOverhead(ovOpts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderOverhead(rep))
		return nil
	}
	runTable1 := func() error {
		fmt.Println(configengine.RenderTable1())
		fmt.Println("Valid strategy combinations (Figure 2): 15 of 18; AC-per-task with IR-per-job is contradictory.")
		return nil
	}
	runScale := func() error {
		pts, err := experiments.ParseScalePoints(*points)
		if err != nil {
			return err
		}
		opts := experiments.ScaleOptions{Points: pts}
		if horizonSet {
			opts.Horizon = *horizon
		}
		results, err := experiments.RunScale(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderScale(
			fmt.Sprintf("Scale sweep: simulated middleware throughput by platform size (points %s)", *points), results))
		if *jsonOut {
			doc, err := experiments.RenderScaleJSON(results)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		return nil
	}
	runReconfig := func() error {
		from, err := core.ParseConfig(*fromCfg)
		if err != nil {
			return fmt.Errorf("-from: %w", err)
		}
		to, err := core.ParseConfig(*toCfg)
		if err != nil {
			return fmt.Errorf("-to: %w", err)
		}
		opts := experiments.ReconfigOptions{From: from, To: to, Sets: *sets, Workers: workers}
		if horizonSet {
			opts.Horizon = *horizon
		} else {
			opts.Horizon = 2 * time.Minute
		}
		results, err := experiments.RunReconfig(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderReconfig(
			fmt.Sprintf("Reconfiguration: %s -> %s at %v of %v (%d sets)", from, to, opts.Horizon/2, opts.Horizon, *sets), results))
		if *jsonOut {
			doc, err := experiments.RenderReconfigJSON(results)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		return nil
	}
	runChurn := func() error {
		opts := experiments.ChurnOptions{Sets: *sets, Workers: workers}
		if horizonSet {
			opts.Horizon = *horizon
		} else {
			opts.Horizon = 2 * time.Minute
		}
		results, err := experiments.RunChurn(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderChurn(
			fmt.Sprintf("Open-world churn: tenants joining/leaving over %v (%d sets, %d workers)", opts.Horizon, *sets, workers), results))
		var liveSmoke *experiments.ChurnLiveResult
		if !*noLive {
			fmt.Fprintln(os.Stderr, "running live churn smoke...")
			liveSmoke, err = experiments.RunChurnLive(experiments.ChurnLiveOptions{})
			if err != nil {
				return err
			}
			fmt.Fprintln(tableW, experiments.RenderChurnLive(liveSmoke))
		}
		if *jsonOut {
			doc, err := experiments.RenderChurnJSON(results, liveSmoke)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		return nil
	}
	runFailover := func() error {
		fmt.Fprintln(os.Stderr, "running kill-a-node failover sweep (live clusters)...")
		results, err := experiments.RunFailover(experiments.FailoverOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderFailover(
			"Failover: heartbeat detection, zero-loss node failover and recovery (one live cluster per victim)", results))
		if *jsonOut {
			doc, err := experiments.RenderFailoverJSON(results)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		if !experiments.FailoverPassed(results) {
			return fmt.Errorf("failover sweep failed its zero-loss obligations (lost jobs, dirty audit, or missing failure-plane events)")
		}
		return nil
	}
	runAblation := func() error {
		results, err := experiments.RunAblationAUBvsDS(experiments.AblationOptions{Seeds: 10, Workers: workers})
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderAblation(results))
		if *jsonOut {
			doc, err := experiments.RenderAblationJSON(results)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		return nil
	}

	runAutopilot := func() error {
		opts := experiments.AutopilotOptions{Workers: workers, Live: !*noLive}
		if !*noLive {
			fmt.Fprintln(os.Stderr, "running autopilot sweep (sim statics + controller, plus live leg)...")
		}
		rep, err := experiments.RunAutopilot(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderAutopilot(rep))
		if *jsonOut {
			doc, err := experiments.RenderAutopilotJSON(rep)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		if !experiments.AutopilotPassed(rep) {
			return fmt.Errorf("autopilot failed acceptance: controller must beat every static combination on >= 2 scenarios with clean invariants")
		}
		return nil
	}

	runScenario := func() error {
		fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
		specPath := fs.String("spec", "", "scenario spec file (JSON)")
		bindingF := fs.String("binding", "both", "binding(s) to run: sim | live | both")
		record := fs.String("record", "", "record the run to a journal file (single binding only)")
		replay := fs.String("replay", "", "replay a journal file in the sim instead of running a spec")
		timescale := fs.Float64("timescale", 0, "live wall-clock compression factor (0 = the spec's)")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			return fmt.Errorf("%w: scenario: %v", errUsage, err)
		}
		if *replay != "" {
			data, err := os.ReadFile(*replay)
			if err != nil {
				return err
			}
			j, err := scenario.DecodeJournal(data)
			if err != nil {
				return err
			}
			rr, err := scenario.Replay(j)
			if err != nil {
				return err
			}
			fmt.Fprintf(tableW, "Replayed %q (%s journal): arrived %d, released %d, completed %d, missed %d, lost %d, ratio %.3f\n",
				rr.Scenario, j.Header.Binding, rr.Arrived, rr.Released, rr.Completed, rr.Missed, rr.Lost, rr.Ratio)
			if *jsonOut {
				fmt.Println(string(rr.MetricsJSON))
			}
			return nil
		}
		if *specPath == "" {
			return fmt.Errorf("%w: scenario: -spec or -replay is required", errUsage)
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		s, err := scenario.Parse(data)
		if err != nil {
			return err
		}
		var bindings []string
		switch *bindingF {
		case "sim":
			bindings = []string{scenario.BindingSim}
		case "live":
			bindings = []string{scenario.BindingLive}
		case "both":
			bindings = []string{scenario.BindingSim, scenario.BindingLive}
		default:
			return fmt.Errorf("%w: scenario: -binding must be sim, live or both, got %q", errUsage, *bindingF)
		}
		rep, err := experiments.RunScenario(experiments.ScenarioOptions{
			Spec: s, Bindings: bindings, TimeScale: *timescale, RecordPath: *record,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW, experiments.RenderScenario(rep))
		if *jsonOut {
			doc, err := experiments.RenderScenarioJSON(rep)
			if err != nil {
				return err
			}
			fmt.Println(doc)
		}
		if !rep.Passed() {
			return fmt.Errorf("scenario %q violated its invariant block", s.Name)
		}
		return nil
	}

	switch cmd {
	case "table1":
		return runTable1()
	case "figure5":
		return runFigure5()
	case "figure6":
		return runFigure6()
	case "overhead":
		return runOverhead()
	case "ablation":
		return runAblation()
	case "scale":
		return runScale()
	case "reconfig":
		return runReconfig()
	case "churn":
		return runChurn()
	case "failover":
		return runFailover()
	case "autopilot":
		return runAutopilot()
	case "scenario":
		return runScenario()
	case "all":
		for _, f := range []func() error{runTable1, runFigure5, runFigure6, runOverhead, runAblation, runScale, runReconfig, runChurn, runFailover, runAutopilot} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown subcommand %q", errUsage, cmd)
	}
}
