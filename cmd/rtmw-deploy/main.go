// Command rtmw-deploy is the plan launcher (DAnCE's Plan Launcher +
// Execution Manager): it parses an XML deployment plan produced by
// rtmw-config and executes it against running rtmw-node daemons — install
// every component instance, apply its configProperty values through the
// Configurator path, wire the event-channel federation, and activate every
// node's container.
//
// Usage:
//
//	rtmw-deploy -plan plan.xml
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/deploy"
	"repro/internal/orb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		planPath = flag.String("plan", "", "XML deployment plan")
		timeout  = flag.Duration("timeout", 30*time.Second, "overall deployment timeout")
	)
	flag.Parse()
	if *planPath == "" {
		return fmt.Errorf("missing -plan (see -help)")
	}
	data, err := os.ReadFile(*planPath)
	if err != nil {
		return err
	}
	plan, err := deploy.Parse(data)
	if err != nil {
		return err
	}

	o := orb.New("rtmw-deploy")
	defer o.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := deploy.NewLauncher(o).Execute(ctx, plan); err != nil {
		return err
	}
	fmt.Printf("deployed plan %q: %d nodes, %d instances, %d connections\n",
		plan.Name, len(plan.Nodes), len(plan.Instances), len(plan.Connections))
	return nil
}
