// Command benchguard compares `go test -bench` output against a checked-in
// JSON baseline and fails (exit 1) on regressions beyond each entry's
// tolerance. It guards the perf trajectory of the admission, event-plane and
// simulation benchmarks in CI.
//
//	go test -run '^$' -bench ... -benchmem -benchtime 1x . | tee bench.txt
//	go run ./cmd/benchguard -baseline BENCH_baseline.json -input bench.txt
//
// Metric semantics: entries are lower-is-better unless the metric is a
// */sec rate. Entries marked advisory only warn — time-based metrics are
// advisory by default in the checked-in baseline because ns/op is hardware
// bound, while allocs/op and allocs/job are deterministic per workload and
// therefore enforced across machines. Run with -update to rewrite the
// baseline's values from the current input (tolerances and flags are kept).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one guarded (benchmark, metric) pair.
type Entry struct {
	// Bench is the benchmark name as printed by `go test -bench`, without
	// the -GOMAXPROCS suffix (e.g. "BenchmarkSimulation",
	// "BenchmarkSimHotPath/procs=50/tasks=10000").
	Bench string `json:"bench"`
	// Metric is the unit column to guard (e.g. "allocs/op", "ns/op",
	// "jobs/sec").
	Metric string `json:"metric"`
	// Value is the baseline measurement.
	Value float64 `json:"value"`
	// Tolerance is the allowed relative regression (0.2 = 20%).
	Tolerance float64 `json:"tolerance"`
	// Advisory entries report regressions without failing the run.
	Advisory bool `json:"advisory,omitempty"`
	// Note documents why the entry is configured the way it is.
	Note string `json:"note,omitempty"`
}

// Baseline is the checked-in file format.
type Baseline struct {
	Note       string  `json:"note,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

var suffixRe = regexp.MustCompile(`-\d+$`)

// parseBench extracts metric values per benchmark from `go test -bench`
// output: every line starting with "Benchmark" contributes its value/unit
// pairs.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := suffixRe.ReplaceAllString(fields[0], "")
		metrics := out[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			out[name] = metrics
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad value %q on line %q", fields[i], line)
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// higherIsBetter reports whether a metric improves upward (throughput rates)
// rather than downward (times, allocations, bytes).
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/sec")
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		inputPath    = flag.String("input", "-", "bench output file (- for stdin)")
		update       = flag.Bool("update", false, "rewrite the baseline's values from the input instead of checking")
		strictTime   = flag.Bool("strict-time", false, "treat advisory entries as enforced (same-machine comparisons)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchguard: parse %s: %w", *baselinePath, err)
	}

	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchguard: no benchmark lines in input")
	}

	if *update {
		for i := range base.Benchmarks {
			e := &base.Benchmarks[i]
			if metrics, ok := results[e.Bench]; ok {
				if v, ok := metrics[e.Metric]; ok {
					e.Value = v
				}
			}
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchguard: baseline %s updated (%d entries)\n", *baselinePath, len(base.Benchmarks))
		return nil
	}

	failures := 0
	// missing reports an absent benchmark or metric: enforced entries fail
	// the run, advisory entries (unless -strict-time) only warn.
	missing := func(e Entry, what string) {
		if e.Advisory && !*strictTime {
			fmt.Printf("WARN     %-55s %-12s (%s; advisory)\n", e.Bench, e.Metric, what)
			return
		}
		fmt.Printf("MISSING  %-55s %-12s (%s)\n", e.Bench, e.Metric, what)
		failures++
	}
	for _, e := range base.Benchmarks {
		metrics, ok := results[e.Bench]
		if !ok {
			missing(e, "benchmark not in input")
			continue
		}
		v, ok := metrics[e.Metric]
		if !ok {
			missing(e, "metric not reported")
			continue
		}
		var regressed bool
		changeStr := "n/a"
		if higherIsBetter(e.Metric) {
			regressed = v < e.Value*(1-e.Tolerance)
		} else if e.Value == 0 {
			// A zero baseline means "must stay zero"; a relative change is
			// undefined, so only the absolute value is reported.
			regressed = v > 0
		} else {
			regressed = v > e.Value*(1+e.Tolerance)
		}
		if e.Value != 0 {
			changeStr = fmt.Sprintf("%+.1f%%", (v-e.Value)/e.Value*100)
		}
		status := "ok"
		switch {
		case regressed && (e.Advisory && !*strictTime):
			status = "WARN"
		case regressed:
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-8s %-55s %-12s base %14.4g  now %14.4g  (%s, tol %.0f%%)\n",
			status, e.Bench, e.Metric, e.Value, v, changeStr, e.Tolerance*100)
	}
	if failures > 0 {
		return fmt.Errorf("benchguard: %d regression(s) beyond tolerance", failures)
	}
	fmt.Println("benchguard: all guarded benchmarks within tolerance")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
