// Command rtmw-config is the front-end configuration engine (paper Section
// 6): it reads a workload specification file and the developer's answers to
// the four application-characteristic questions, maps them to middleware
// strategies per Table 1 (rejecting invalid combinations), and writes the
// XML deployment plan for rtmw-deploy.
//
// Usage:
//
//	rtmw-config -workload plant.json \
//	    -job-skipping=false -replication=true -persistence=true -overhead=PT \
//	    -manager manager=127.0.0.1:7000 \
//	    -nodes app0=127.0.0.1:7001,app1=127.0.0.1:7002 \
//	    -out plan.xml
//
// Pass -config J_T_N to bypass the questionnaire with an explicit strategy
// tuple; the engine still validates it.
//
// The reconfigure subcommand swaps strategies on a RUNNING cluster without
// redeploying: it reads the executed plan, computes the reconfiguration
// delta to the target combination, and drives the epoch-versioned
// quiesce → swap → resume transaction over the ORB against the live nodes.
// No job is dropped; arrivals during the quiesce are decided under the new
// configuration.
//
//	rtmw-config reconfigure -plan plan.xml -config J_J_J [-out plan.xml]
//
// The health subcommand probes a RUNNING cluster: it pings every node's
// NodeManager over the ORB (the liveness view an operator gets before the
// in-cluster heartbeat detector would act) and reads the admission
// controller's current epoch and strategy combination off its
// reconfiguration facet. It exits non-zero when any node is down.
//
//	rtmw-config health -plan plan.xml
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/live"
	"repro/internal/orb"
	"repro/internal/spec"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "reconfigure" {
		if err := runReconfigure(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "health" {
		if err := runHealth(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// runHealth probes every node of an executed plan and reports the admission
// controller's epoch and configuration.
func runHealth(args []string) error {
	fs := flag.NewFlagSet("rtmw-config health", flag.ExitOnError)
	var (
		planPath = fs.String("plan", "", "executed deployment plan of the running cluster (XML)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-probe timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planPath == "" {
		return fmt.Errorf("missing -plan (the XML plan the running cluster was deployed from)")
	}
	data, err := os.ReadFile(*planPath)
	if err != nil {
		return err
	}
	plan, err := deploy.Parse(data)
	if err != nil {
		return err
	}

	o := orb.New("rtmw-health")
	defer o.Shutdown()
	l := deploy.NewLauncher(o)
	down := 0
	fmt.Printf("%-12s %-6s %-22s %s\n", "node", "proc", "address", "status")
	for _, n := range plan.Nodes {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := l.Ping(ctx, n.Address)
		cancel()
		status := "up"
		if err != nil {
			status = "DOWN"
			down++
		}
		proc := fmt.Sprintf("%d", n.Processor)
		if n.Processor < 0 {
			proc = "mgr"
		}
		fmt.Printf("%-12s %-6s %-22s %s\n", n.Name, proc, n.Address, status)
	}

	// The AC's reconfiguration facet answers Epoch and Config on the node
	// hosting Central-AC.
	managerAddr := ""
	for _, inst := range plan.Instances {
		if inst.Implementation == live.ImplAdmissionController {
			for _, n := range plan.Nodes {
				if n.Name == inst.Node {
					managerAddr = n.Address
				}
			}
		}
	}
	if managerAddr == "" {
		return fmt.Errorf("plan has no admission controller instance")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var epoch int64
	if reply, err := o.Invoke(ctx, managerAddr, live.ReconfigServantKey, "Epoch", nil); err != nil {
		fmt.Printf("admission controller: UNREACHABLE (%v)\n", err)
		down++
	} else if err := gob.NewDecoder(bytes.NewReader(reply)).Decode(&epoch); err != nil {
		return fmt.Errorf("decode epoch: %w", err)
	} else {
		cfg := "unknown"
		if reply, err := o.Invoke(ctx, managerAddr, live.ReconfigServantKey, "Config", nil); err == nil {
			var s string
			if gob.NewDecoder(bytes.NewReader(reply)).Decode(&s) == nil {
				cfg = s
			}
		}
		fmt.Printf("admission controller: epoch %d, configuration %s\n", epoch, cfg)
	}
	if down > 0 {
		return fmt.Errorf("%d probe(s) failed", down)
	}
	return nil
}

// runReconfigure executes the reconfigure subcommand against a running
// cluster.
func runReconfigure(args []string) error {
	fs := flag.NewFlagSet("rtmw-config reconfigure", flag.ExitOnError)
	var (
		planPath = fs.String("plan", "", "executed deployment plan of the running cluster (XML)")
		target   = fs.String("config", "", "target AC_IR_LB tuple (e.g. J_J_J)")
		out      = fs.String("out", "", "rewrite this plan file with the new configuration after a successful swap")
		timeout  = fs.Duration("timeout", 30*time.Second, "transaction timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planPath == "" {
		return fmt.Errorf("missing -plan (the XML plan the running cluster was deployed from)")
	}
	if *target == "" {
		return fmt.Errorf("missing -config (target AC_IR_LB tuple)")
	}
	data, err := os.ReadFile(*planPath)
	if err != nil {
		return err
	}
	plan, err := deploy.Parse(data)
	if err != nil {
		return err
	}
	to, err := core.ParseConfig(*target)
	if err != nil {
		return fmt.Errorf("invalid -config: %w", err)
	}
	delta, err := configengine.ReconfigDelta(plan, to)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "reconfiguring %s: %s -> %s (%d instance updates, %d new routes)\n",
		plan.Name, delta.FromConfig, delta.ToConfig, len(delta.Updates), len(delta.Connections))

	o := orb.New("rtmw-reconfigure")
	defer o.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	outcome, err := deploy.NewLauncher(o).ExecuteReconfig(ctx, delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "entered epoch %d: quiesced %v, %d deferred arrivals replayed under %s\n",
		outcome.Epoch, outcome.QuiesceDuration.Round(time.Microsecond), outcome.Deferred, delta.ToConfig)
	for node, d := range outcome.NodeTimings {
		fmt.Fprintf(os.Stderr, "  %-10s swap %v\n", node, d.Round(time.Microsecond))
	}
	if *out != "" {
		delta.Apply(plan)
		encoded, err := plan.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, encoded, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (now %s)\n", *out, delta.ToConfig)
	}
	return nil
}

func run() error {
	var (
		workloadPath = flag.String("workload", "", "workload specification file (JSON)")
		jobSkipping  = flag.Bool("job-skipping", false, "Q1: does your application allow job skipping?")
		replication  = flag.Bool("replication", true, "Q2: does your application have replicated components?")
		persistence  = flag.Bool("persistence", true, "Q3: does your application require state persistence?")
		overhead     = flag.String("overhead", "PT", "Q4: acceptable extra overhead (N, PT or PJ)")
		explicit     = flag.String("config", "", "explicit AC_IR_LB tuple, bypassing the questionnaire (e.g. J_T_N)")
		managerSpec  = flag.String("manager", "manager=127.0.0.1:7000", "task manager node as name=address")
		nodesSpec    = flag.String("nodes", "", "application nodes as name=address, comma separated, in processor order")
		out          = flag.String("out", "", "output plan file (default stdout)")
		planName     = flag.String("name", "rtmw", "deployment plan name")
	)
	flag.Parse()

	if *workloadPath == "" {
		return fmt.Errorf("missing -workload (see -help)")
	}
	data, err := os.ReadFile(*workloadPath)
	if err != nil {
		return err
	}
	w, err := spec.Parse(data)
	if err != nil {
		return err
	}

	var cfg core.Config
	if *explicit != "" {
		cfg, err = core.ParseConfig(*explicit)
		if err != nil {
			return fmt.Errorf("invalid -config: %w", err)
		}
		fmt.Fprintf(os.Stderr, "using explicit configuration %s\n", cfg)
	} else {
		tol, err := configengine.ParseTolerance(*overhead)
		if err != nil {
			return err
		}
		res := configengine.MapAnswers(configengine.Answers{
			JobSkipping:      *jobSkipping,
			Replication:      *replication,
			StatePersistence: *persistence,
			Overhead:         tol,
		})
		cfg = res.Config
		fmt.Fprintf(os.Stderr, "selected configuration %s:\n", cfg)
		for _, note := range res.Notes {
			fmt.Fprintf(os.Stderr, "  - %s\n", note)
		}
	}

	manager, err := parseNode(*managerSpec, -1)
	if err != nil {
		return err
	}
	var apps []deploy.Node
	if *nodesSpec == "" {
		return fmt.Errorf("missing -nodes (one name=address per application processor)")
	}
	for i, part := range strings.Split(*nodesSpec, ",") {
		n, err := parseNode(strings.TrimSpace(part), i)
		if err != nil {
			return err
		}
		apps = append(apps, n)
	}

	plan, err := configengine.GeneratePlan(*planName, w, cfg, manager, apps)
	if err != nil {
		return err
	}
	encoded, err := plan.Encode()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(encoded)
		return err
	}
	if err := os.WriteFile(*out, encoded, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d instances, %d connections)\n", *out, len(plan.Instances), len(plan.Connections))
	return nil
}

// parseNode reads a "name=address" declaration.
func parseNode(s string, proc int) (deploy.Node, error) {
	name, addr, ok := strings.Cut(s, "=")
	if !ok || name == "" || addr == "" {
		return deploy.Node{}, fmt.Errorf("bad node declaration %q (want name=address)", s)
	}
	return deploy.Node{Name: name, Address: addr, Processor: proc}, nil
}
