// Command rtmw-config is the front-end configuration engine (paper Section
// 6): it reads a workload specification file and the developer's answers to
// the four application-characteristic questions, maps them to middleware
// strategies per Table 1 (rejecting invalid combinations), and writes the
// XML deployment plan for rtmw-deploy.
//
// Usage:
//
//	rtmw-config -workload plant.json \
//	    -job-skipping=false -replication=true -persistence=true -overhead=PT \
//	    -manager manager=127.0.0.1:7000 \
//	    -nodes app0=127.0.0.1:7001,app1=127.0.0.1:7002 \
//	    -out plan.xml
//
// Pass -config J_T_N to bypass the questionnaire with an explicit strategy
// tuple; the engine still validates it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		workloadPath = flag.String("workload", "", "workload specification file (JSON)")
		jobSkipping  = flag.Bool("job-skipping", false, "Q1: does your application allow job skipping?")
		replication  = flag.Bool("replication", true, "Q2: does your application have replicated components?")
		persistence  = flag.Bool("persistence", true, "Q3: does your application require state persistence?")
		overhead     = flag.String("overhead", "PT", "Q4: acceptable extra overhead (N, PT or PJ)")
		explicit     = flag.String("config", "", "explicit AC_IR_LB tuple, bypassing the questionnaire (e.g. J_T_N)")
		managerSpec  = flag.String("manager", "manager=127.0.0.1:7000", "task manager node as name=address")
		nodesSpec    = flag.String("nodes", "", "application nodes as name=address, comma separated, in processor order")
		out          = flag.String("out", "", "output plan file (default stdout)")
		planName     = flag.String("name", "rtmw", "deployment plan name")
	)
	flag.Parse()

	if *workloadPath == "" {
		return fmt.Errorf("missing -workload (see -help)")
	}
	data, err := os.ReadFile(*workloadPath)
	if err != nil {
		return err
	}
	w, err := spec.Parse(data)
	if err != nil {
		return err
	}

	var cfg core.Config
	if *explicit != "" {
		cfg, err = core.ParseConfig(*explicit)
		if err != nil {
			return fmt.Errorf("invalid -config: %w", err)
		}
		fmt.Fprintf(os.Stderr, "using explicit configuration %s\n", cfg)
	} else {
		tol, err := configengine.ParseTolerance(*overhead)
		if err != nil {
			return err
		}
		res := configengine.MapAnswers(configengine.Answers{
			JobSkipping:      *jobSkipping,
			Replication:      *replication,
			StatePersistence: *persistence,
			Overhead:         tol,
		})
		cfg = res.Config
		fmt.Fprintf(os.Stderr, "selected configuration %s:\n", cfg)
		for _, note := range res.Notes {
			fmt.Fprintf(os.Stderr, "  - %s\n", note)
		}
	}

	manager, err := parseNode(*managerSpec, -1)
	if err != nil {
		return err
	}
	var apps []deploy.Node
	if *nodesSpec == "" {
		return fmt.Errorf("missing -nodes (one name=address per application processor)")
	}
	for i, part := range strings.Split(*nodesSpec, ",") {
		n, err := parseNode(strings.TrimSpace(part), i)
		if err != nil {
			return err
		}
		apps = append(apps, n)
	}

	plan, err := configengine.GeneratePlan(*planName, w, cfg, manager, apps)
	if err != nil {
		return err
	}
	encoded, err := plan.Encode()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(encoded)
		return err
	}
	if err := os.WriteFile(*out, encoded, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d instances, %d connections)\n", *out, len(plan.Instances), len(plan.Connections))
	return nil
}

// parseNode reads a "name=address" declaration.
func parseNode(s string, proc int) (deploy.Node, error) {
	name, addr, ok := strings.Cut(s, "=")
	if !ok || name == "" || addr == "" {
		return deploy.Node{}, fmt.Errorf("bad node declaration %q (want name=address)", s)
	}
	return deploy.Node{Name: name, Address: addr, Processor: proc}, nil
}
