package rtmw_test

import (
	"errors"
	"testing"
	"time"

	rtmw "repro"
)

// TestFacadeSimulationQuickstart exercises the README quickstart path
// through the public facade.
func TestFacadeSimulationQuickstart(t *testing.T) {
	tasks := []*rtmw.Task{
		{
			ID: "sensor", Kind: rtmw.Periodic,
			Period: 200 * time.Millisecond, Deadline: 200 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 20 * time.Millisecond, Processor: 0, Replicas: []int{1}},
				{Index: 1, Exec: 10 * time.Millisecond, Processor: 1},
			},
		},
		{
			ID: "alert", Kind: rtmw.Aperiodic,
			Deadline: 150 * time.Millisecond, MeanInterarrival: 300 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 15 * time.Millisecond, Processor: 1},
			},
		},
	}
	cfg, err := rtmw.ParseConfig("J_J_T")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rtmw.NewSimBinding(rtmw.SimConfig{
		Strategies: cfg,
		NumProcs:   2,
		Horizon:    time.Minute,
		Seed:       1,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.Total.Arrived == 0 || m.Total.Released == 0 {
		t.Fatalf("metrics = %+v", m.Total)
	}
	if r := m.AcceptedUtilizationRatio(); r <= 0 || r > 1 {
		t.Errorf("accepted utilization ratio = %g", r)
	}
}

// TestFacadeUnifiedBinding drives the simulation binding through the
// Binding interface: reconfigure mid-run, then pin the snapshot and the
// zero-job-loss guarantee.
func TestFacadeUnifiedBinding(t *testing.T) {
	tasks := []*rtmw.Task{
		{
			ID: "sensor", Kind: rtmw.Periodic,
			Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 10 * time.Millisecond, Processor: 0, Replicas: []int{1}},
			},
		},
		{
			ID: "alert", Kind: rtmw.Aperiodic,
			Deadline: 150 * time.Millisecond, MeanInterarrival: 200 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 15 * time.Millisecond, Processor: 1},
			},
		},
	}
	from, _ := rtmw.ParseConfig("T_N_N")
	to, _ := rtmw.ParseConfig("J_J_J")
	sim, err := rtmw.NewSimBinding(rtmw.SimConfig{
		Strategies: from, NumProcs: 2, Horizon: 30 * time.Second, Seed: 3,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	var b rtmw.Binding = sim

	// Invalid target rejected through the interface, config untouched.
	bad, err := rtmw.ParseConfig("T_N_N")
	if err != nil {
		t.Fatal(err)
	}
	bad.IR = rtmw.StrategyPerJob
	if _, err := b.Reconfigure(bad); err == nil {
		t.Error("contradictory target accepted through Binding")
	}
	if snap := b.Snapshot(); snap.Config != from || snap.Epoch != 0 {
		t.Errorf("snapshot disturbed: %+v", snap)
	}

	adm, err := b.Submit("alert")
	if err != nil {
		t.Fatal(err)
	}
	if adm.Job != 0 || adm.Outcome != rtmw.AdmissionPending {
		t.Errorf("submit admission = %+v", adm)
	}
	if _, err := b.Submit("ghost"); !errors.Is(err, rtmw.ErrUnknownTask) {
		t.Errorf("unknown task error = %v, want ErrUnknownTask", err)
	}

	// Open-world surface through the interface: a watch stream, a mid-run
	// task join and a departure.
	watch, err := b.Watch(rtmw.WatchOptions{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []rtmw.WatchKind
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for ev := range watch.Events() {
			kinds = append(kinds, ev.Kind)
		}
	}()
	if err := sim.At(5*time.Second, func() {
		err := b.AddTasks([]*rtmw.Task{{
			ID: "burst", Kind: rtmw.Aperiodic,
			Deadline: 100 * time.Millisecond, MeanInterarrival: 200 * time.Millisecond,
			Subtasks: []rtmw.Subtask{{Index: 0, Exec: 5 * time.Millisecond, Processor: 0}},
		}})
		if err != nil {
			t.Errorf("AddTasks through Binding: %v", err)
			return
		}
		if _, err := b.SubmitBatch([]string{"burst", "burst"}); err != nil {
			t.Errorf("SubmitBatch through Binding: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.At(20*time.Second, func() {
		if err := b.RemoveTasks([]string{"burst"}); err != nil {
			t.Errorf("RemoveTasks through Binding: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := sim.ScheduleReconfig(15*time.Second, to); err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.Total.Released != m.Total.Completed {
		t.Errorf("admitted jobs lost: %+v", m.Total)
	}
	snap := b.Snapshot()
	if snap.Config != to || snap.Epoch != 1 || snap.InFlight != 0 {
		t.Errorf("snapshot after reconfigured run = %+v", snap)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	<-watchDone
	seen := make(map[rtmw.WatchKind]bool, len(kinds))
	for _, k := range kinds {
		seen[k] = true
	}
	for _, want := range []rtmw.WatchKind{
		rtmw.WatchAdmitted, rtmw.WatchCompleted, rtmw.WatchTaskAdded,
		rtmw.WatchTaskRemoved, rtmw.WatchReconfigured,
	} {
		if !seen[want] {
			t.Errorf("watch stream missing %v events (saw %v)", want, kinds)
		}
	}
	if _, err := b.Submit("alert"); !errors.Is(err, rtmw.ErrStopped) {
		t.Errorf("submit after Stop error = %v, want ErrStopped", err)
	}
}

func TestFacadeConfigEngine(t *testing.T) {
	res := rtmw.MapAnswers(rtmw.Answers{
		JobSkipping:      true,
		Replication:      true,
		StatePersistence: false,
		Overhead:         rtmw.TolerancePerJob,
	})
	if res.Config.String() != "J_J_J" {
		t.Errorf("mapping = %s, want J_J_J", res.Config)
	}
	if _, err := rtmw.ParseConfig("T_J_N"); err == nil {
		t.Error("facade accepted the contradictory T_J_N configuration")
	}
	if got := len(rtmw.AllCombinations()); got != 15 {
		t.Errorf("AllCombinations = %d, want 15", got)
	}
}

func TestFacadeWorkloadRoundTrip(t *testing.T) {
	tasks, err := rtmw.GenerateWorkload(rtmw.Figure5Params(0))
	if err != nil {
		t.Fatal(err)
	}
	w := rtmw.WorkloadFromTasks("fig5", 5, tasks)
	data, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := rtmw.ParseWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Tasks) != len(tasks) {
		t.Errorf("round trip lost tasks: %d vs %d", len(w2.Tasks), len(tasks))
	}
	scaled := rtmw.ScaleWorkload(tasks, 0.5)
	if scaled[0].Deadline != tasks[0].Deadline/2 {
		t.Error("ScaleWorkload did not halve deadlines")
	}
}

func TestFacadePlanGeneration(t *testing.T) {
	w, err := rtmw.ParseWorkload([]byte(`{
	  "name": "facade", "processors": 1,
	  "tasks": [{"id": "t", "kind": "periodic", "period": "1s", "deadline": "1s",
	    "subtasks": [{"exec": "10ms", "processor": 0}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := rtmw.GeneratePlan("p", w, rtmw.MapAnswers(rtmw.DefaultAnswers()).Config,
		rtmw.DeploymentNode{Name: "m", Address: "127.0.0.1:1", Processor: -1},
		[]rtmw.DeploymentNode{{Name: "a0", Address: "127.0.0.1:2", Processor: 0}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.Encode()
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := rtmw.ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Name != "p" || len(plan2.Instances) == 0 {
		t.Errorf("plan round trip = %+v", plan2)
	}
}
