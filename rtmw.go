// Package rtmw is a reconfigurable real-time middleware for distributed
// cyber-physical systems with aperiodic and periodic events — a Go
// reproduction of Zhang, Gill, Lu, "Reconfigurable Real-Time Middleware for
// Distributed Cyber-Physical Systems with Aperiodic Events" (WUCSE-2008-5 /
// ICDCS 2008).
//
// The middleware provides three configurable services for end-to-end task
// management under the aperiodic utilization bound (AUB) analysis:
//
//   - Admission control (AC): per-task or per-job AUB admission tests;
//   - Idle resetting (IR): none, per-task (aperiodic subjobs), or per-job
//     (aperiodic + periodic subjobs) removal of completed subjobs'
//     synthetic utilization when a processor idles;
//   - Load balancing (LB): none, per-task, or per-job assignment of
//     subtasks to the least-utilized replica.
//
// A front-end configuration engine maps four application-characteristic
// questions (job skipping, replication, state persistence, overhead
// tolerance) to a valid strategy combination, rejects the contradictory
// AC-per-task/IR-per-job configurations, and generates XML deployment plans
// executed over live nodes.
//
// Two bindings run the same policies:
//
//   - a deterministic discrete-event simulation for schedulability
//     experiments (Figures 5 and 6 of the paper), and
//   - a live binding over a TCP object request broker and federated event
//     channels for real deployments and overhead measurement (Figure 8).
//
// This package is a facade over the internal implementation packages; see
// README.md for a quickstart and DESIGN.md for the layer architecture and
// the admission ledger's index design.
package rtmw

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Task model re-exports.
type (
	// Task is an end-to-end task: a chain of subtasks with a deadline.
	Task = sched.Task
	// Subtask is one stage of an end-to-end task.
	Subtask = sched.Subtask
	// TaskKind distinguishes periodic from aperiodic tasks.
	TaskKind = sched.TaskKind
	// JobRef identifies one release of a task.
	JobRef = sched.JobRef
)

// Task kinds.
const (
	Periodic  = sched.Periodic
	Aperiodic = sched.Aperiodic
)

// Strategy configuration re-exports.
type (
	// Strategy is one service axis setting (N / T / J).
	Strategy = core.Strategy
	// Config is an AC/IR/LB strategy combination such as "J_T_N".
	Config = core.Config
)

// Strategy values.
const (
	StrategyNone    = core.StrategyNone
	StrategyPerTask = core.StrategyPerTask
	StrategyPerJob  = core.StrategyPerJob
)

// ParseConfig parses an "AC_IR_LB" tuple such as "J_T_N" and validates it.
func ParseConfig(s string) (Config, error) { return core.ParseConfig(s) }

// AllCombinations returns the 15 valid strategy combinations in the paper's
// figure order.
func AllCombinations() []Config { return core.AllCombinations() }

// AssignEDMSPriorities assigns End-to-end Deadline Monotonic priorities.
func AssignEDMSPriorities(tasks []*Task) { sched.AssignEDMSPriorities(tasks) }

// Binding is the unified surface both middleware bindings implement: the
// deterministic simulation (*SimSystem) and the live cluster (*Cluster).
// Submit injects a job arrival, Snapshot reads the active configuration and
// aggregate accounting, Reconfigure runs the epoch-versioned two-phase
// strategy swap — quiesce admission, drain in-flight decisions, swap the
// AC/IR/LB strategy objects, rebase the admission ledger, resume — without
// dropping a single admitted job, and Stop retires the binding.
//
// Reconfigure rejects invalid target combinations (the configengine
// feasibility rules, e.g. AC-per-task with IR-per-job) without disturbing
// the running configuration. On the simulation binding a mid-run
// Reconfigure completes when virtual time passes the quiesce window; use
// (*SimSystem).ScheduleReconfig to build strategy schedules at exact
// virtual times.
type Binding interface {
	Submit(taskID string) (int64, error)
	Snapshot() BindingSnapshot
	Reconfigure(cfg Config) (*ReconfigReport, error)
	Stop() error
}

// Binding surface re-exports.
type (
	// BindingSnapshot is a point-in-time view of a running binding.
	BindingSnapshot = core.BindingSnapshot
	// ReconfigReport describes one completed reconfiguration transaction.
	ReconfigReport = core.ReconfigReport
)

// Compile-time proof that both bindings expose the unified surface.
var (
	_ Binding = (*SimSystem)(nil)
	_ Binding = (*Cluster)(nil)
)

// Simulation re-exports: the deterministic virtual-time binding.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = core.SimConfig
	// SimSystem is a configured simulation.
	SimSystem = core.SimSystem
	// Metrics is a run's accounting; its AcceptedUtilizationRatio is the
	// paper's headline metric.
	Metrics = core.Metrics
)

// NewSimBinding builds the simulation binding of the middleware over the
// tasks. Run executes the workload; ScheduleReconfig swaps strategies at a
// virtual time mid-run.
func NewSimBinding(cfg SimConfig, tasks []*Task) (*SimSystem, error) {
	return core.NewSimSystem(cfg, tasks)
}

// NewSimulation builds a simulation of the middleware over the tasks.
//
// Deprecated: use NewSimBinding, which returns the same *SimSystem through
// the unified Binding surface.
func NewSimulation(cfg SimConfig, tasks []*Task) (*SimSystem, error) {
	return core.NewSimSystem(cfg, tasks)
}

// Simulate is the one-call form: build, run, return metrics.
//
// Deprecated: use NewSimBinding and (*SimSystem).Run, which also expose
// mid-run reconfiguration and the Binding surface.
func Simulate(cfg SimConfig, tasks []*Task) (*Metrics, error) {
	sim, err := core.NewSimSystem(cfg, tasks)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// Workload specification re-exports.
type (
	// Workload is the JSON workload specification file model.
	Workload = spec.Workload
	// TaskSpec describes one task in a workload specification.
	TaskSpec = spec.TaskSpec
	// SubtaskSpec describes one stage in a workload specification.
	SubtaskSpec = spec.SubtaskSpec
)

// ParseWorkload decodes and validates a JSON workload specification.
func ParseWorkload(data []byte) (*Workload, error) { return spec.Parse(data) }

// WorkloadFromTasks builds a specification from model tasks.
func WorkloadFromTasks(name string, processors int, tasks []*Task) *Workload {
	return spec.FromTasks(name, processors, tasks)
}

// Random workload generation re-exports (the paper's Section 7 setups).
type WorkloadParams = workload.Params

// Workload parameter constructors for the paper's experiments.
var (
	Figure5Params  = workload.Figure5Params
	Figure6Params  = workload.Figure6Params
	OverheadParams = workload.OverheadParams
)

// GenerateWorkload produces a random task set per the parameters.
func GenerateWorkload(p WorkloadParams) ([]*Task, error) { return workload.Generate(p) }

// ScaleWorkload multiplies every duration in the tasks by factor, keeping
// synthetic utilizations invariant.
func ScaleWorkload(tasks []*Task, factor float64) []*Task { return workload.Scale(tasks, factor) }

// Configuration engine re-exports.
type (
	// Answers are the developer's responses to the four questions of the
	// front-end configuration engine.
	Answers = configengine.Answers
	// Tolerance is the overhead-tolerance answer (N / PT / PJ).
	Tolerance = configengine.Tolerance
	// MappingResult is a strategy selection with its reasoning.
	MappingResult = configengine.Result
	// DeploymentPlan is an XML deployment plan.
	DeploymentPlan = deploy.Plan
	// DeploymentNode declares one node in a plan.
	DeploymentNode = deploy.Node
)

// Overhead tolerance values.
const (
	ToleranceNone    = configengine.ToleranceNone
	TolerancePerTask = configengine.TolerancePerTask
	TolerancePerJob  = configengine.TolerancePerJob
)

// MapAnswers applies Table 1 to select a valid strategy combination.
func MapAnswers(a Answers) MappingResult { return configengine.MapAnswers(a) }

// DefaultAnswers returns the engine's defaults (everything per task).
func DefaultAnswers() Answers { return configengine.DefaultAnswers() }

// GeneratePlan emits the XML deployment plan for a workload under a
// strategy combination.
func GeneratePlan(name string, w *Workload, cfg Config, manager DeploymentNode, apps []DeploymentNode) (*DeploymentPlan, error) {
	return configengine.GeneratePlan(name, w, cfg, manager, apps)
}

// ParsePlan decodes an XML deployment plan.
func ParsePlan(data []byte) (*DeploymentPlan, error) { return deploy.Parse(data) }

// Live cluster re-exports: the real-transport binding.
type (
	// ClusterOptions configures an in-process live deployment.
	ClusterOptions = cluster.Options
	// Cluster is a running live deployment (manager + application nodes on
	// TCP loopback, deployed through the configuration engine and plan
	// launcher).
	Cluster = cluster.Cluster
)

// StartLiveBinding deploys and activates the live cluster binding: manager
// plus application nodes on TCP loopback, deployed through the
// configuration engine, XML plan and plan launcher. The returned Cluster
// implements the unified Binding surface, including live Reconfigure.
func StartLiveBinding(opts ClusterOptions) (*Cluster, error) { return cluster.Start(opts) }

// StartCluster deploys and activates a live cluster.
//
// Deprecated: use StartLiveBinding, which returns the same *Cluster through
// the unified Binding surface.
func StartCluster(opts ClusterOptions) (*Cluster, error) { return cluster.Start(opts) }

// Reconfiguration-delta re-exports: the configuration engine emits minimal
// deltas against a running deployment's plan, and the plan launcher
// executes them (rtmw-config's reconfigure subcommand is the CLI form).
type (
	// ReconfigDeltaPlan is a reconfiguration transaction for a running
	// deployment.
	ReconfigDeltaPlan = deploy.Delta
	// ReconfigOutcome reports an executed reconfiguration transaction.
	ReconfigOutcome = deploy.ReconfigOutcome
)

// ReconfigDelta computes the minimal reconfiguration transaction that moves
// the running deployment described by plan to the target combination.
func ReconfigDelta(plan *DeploymentPlan, to Config) (*ReconfigDeltaPlan, error) {
	return configengine.ReconfigDelta(plan, to)
}

// Experiment re-exports: regenerate the paper's tables and figures. The
// figure and ablation runners fan their independent (combo, set) / seed
// trials over a bounded worker pool when Workers is set; results are
// bit-identical to a serial run.
type (
	// FigureOptions parameterizes the Figure 5/6 experiments.
	FigureOptions = experiments.FigureOptions
	// ComboResult is one strategy combination's accepted utilization ratio.
	ComboResult = experiments.ComboResult
	// OverheadOptions parameterizes the Figure 7/8 overhead measurement.
	OverheadOptions = experiments.OverheadOptions
	// OverheadReport is the measured overhead accounting.
	OverheadReport = experiments.OverheadReport
	// AblationOptions parameterizes the AUB-vs-deferrable-server ablation.
	AblationOptions = experiments.AblationOptions
	// AblationResult is one admission technique's outcome in the ablation.
	AblationResult = experiments.AblationResult
	// ScaleOptions parameterizes the large-scenario throughput sweep over
	// the pooled simulation core.
	ScaleOptions = experiments.ScaleOptions
	// ScalePoint is one (processors, tasks) configuration of the sweep.
	ScalePoint = experiments.ScalePoint
	// ScaleResult is one scale point's virtual workload and wall-clock
	// throughput.
	ScaleResult = experiments.ScaleResult
	// ReconfigOptions parameterizes the mid-run reconfiguration experiment.
	ReconfigOptions = experiments.ReconfigOptions
	// ReconfigResult is one task set's reconfiguration outcome.
	ReconfigResult = experiments.ReconfigResult
)

// Experiment runners and renderers.
var (
	RunFigure5         = experiments.RunFigure5
	RunFigure6         = experiments.RunFigure6
	RunOverhead        = experiments.RunOverhead
	RunAblationAUBvsDS = experiments.RunAblationAUBvsDS
	RunScale           = experiments.RunScale
	RunReconfig        = experiments.RunReconfig
	RenderReconfig     = experiments.RenderReconfig
	RenderReconfigJSON = experiments.RenderReconfigJSON
	RenderScale        = experiments.RenderScale
	RenderScaleJSON    = experiments.RenderScaleJSON
	ParseScalePoints   = experiments.ParseScalePoints
	// ScaleWorkloadParams builds the large-scenario workload parameters for
	// one (procs, tasks, set) scale point.
	ScaleWorkloadParams = workload.ScaleParams
	RenderFigure        = experiments.RenderFigure
	RenderCSV           = experiments.RenderCSV
	RenderFigureJSON    = experiments.RenderFigureJSON
	RenderAblation      = experiments.RenderAblation
	RenderAblationJSON  = experiments.RenderAblationJSON
	RenderOverhead      = experiments.RenderOverhead
	RenderTable1        = configengine.RenderTable1
	// ResolveWorkers normalizes a Workers option (values below 1 select one
	// worker per CPU).
	ResolveWorkers = experiments.ResolveWorkers
)

// DefaultLinkDelay is the simulated one-way communication delay, calibrated
// to the paper's measured 322 µs mean on its 100 Mbps testbed.
const DefaultLinkDelay = 322 * time.Microsecond
