// Package rtmw is a reconfigurable real-time middleware for distributed
// cyber-physical systems with aperiodic and periodic events — a Go
// reproduction of Zhang, Gill, Lu, "Reconfigurable Real-Time Middleware for
// Distributed Cyber-Physical Systems with Aperiodic Events" (WUCSE-2008-5 /
// ICDCS 2008).
//
// The middleware provides three configurable services for end-to-end task
// management under the aperiodic utilization bound (AUB) analysis:
//
//   - Admission control (AC): per-task or per-job AUB admission tests;
//   - Idle resetting (IR): none, per-task (aperiodic subjobs), or per-job
//     (aperiodic + periodic subjobs) removal of completed subjobs'
//     synthetic utilization when a processor idles;
//   - Load balancing (LB): none, per-task, or per-job assignment of
//     subtasks to the least-utilized replica.
//
// A front-end configuration engine maps four application-characteristic
// questions (job skipping, replication, state persistence, overhead
// tolerance) to a valid strategy combination, rejects the contradictory
// AC-per-task/IR-per-job configurations, and generates XML deployment plans
// executed over live nodes.
//
// Two bindings run the same policies:
//
//   - a deterministic discrete-event simulation for schedulability
//     experiments (Figures 5 and 6 of the paper), and
//   - a live binding over a TCP object request broker and federated event
//     channels for real deployments and overhead measurement (Figure 8).
//
// This package is a facade over the internal implementation packages; see
// README.md for a quickstart and DESIGN.md for the layer architecture and
// the admission ledger's index design.
package rtmw

import (
	"time"

	"repro/internal/autopilot"
	"repro/internal/cluster"
	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Task model re-exports.
type (
	// Task is an end-to-end task: a chain of subtasks with a deadline.
	Task = sched.Task
	// Subtask is one stage of an end-to-end task.
	Subtask = sched.Subtask
	// TaskKind distinguishes periodic from aperiodic tasks.
	TaskKind = sched.TaskKind
	// JobRef identifies one release of a task.
	JobRef = sched.JobRef
)

// Task kinds.
const (
	Periodic  = sched.Periodic
	Aperiodic = sched.Aperiodic
)

// Strategy configuration re-exports.
type (
	// Strategy is one service axis setting (N / T / J).
	Strategy = core.Strategy
	// Config is an AC/IR/LB strategy combination such as "J_T_N".
	Config = core.Config
)

// Strategy values.
const (
	StrategyNone    = core.StrategyNone
	StrategyPerTask = core.StrategyPerTask
	StrategyPerJob  = core.StrategyPerJob
)

// ParseConfig parses an "AC_IR_LB" tuple such as "J_T_N" and validates it.
func ParseConfig(s string) (Config, error) { return core.ParseConfig(s) }

// AllCombinations returns the 15 valid strategy combinations in the paper's
// figure order.
func AllCombinations() []Config { return core.AllCombinations() }

// AssignEDMSPriorities assigns End-to-end Deadline Monotonic priorities.
func AssignEDMSPriorities(tasks []*Task) { sched.AssignEDMSPriorities(tasks) }

// Binding is the open-world surface both middleware bindings implement: the
// deterministic simulation (*SimSystem) and the live cluster (*Cluster).
//
// Ingestion is admission-aware: Submit injects one job arrival and returns a
// typed Admission (job number plus the decision state — per-task cached
// decisions resolve synchronously, everything else is Pending until the
// decision round trip completes), and SubmitBatch injects bulk arrivals,
// amortizing transport round trips on the live binding.
//
// The task set is dynamic: AddTasks registers tasks on the running binding
// (EDMS priorities re-assigned over the union, AUB-ledger admission from the
// next arrival; the live binding installs the new subtask components and
// federation routes through a configuration-engine delta under the quiesce
// protocol) and RemoveTasks withdraws tasks, releasing their remaining
// ledger contributions without losing a single already-admitted job.
//
// Watch opens an ordered stream of typed lifecycle events (admissions,
// rejections, completions, deadline misses, task-set changes,
// reconfigurations) — the push-based replacement for Snapshot polling.
// Snapshot remains the aggregate point-in-time view.
//
// Reconfigure runs the epoch-versioned two-phase strategy swap — quiesce
// admission, drain in-flight decisions, swap the AC/IR/LB strategy objects,
// rebase the admission ledger, resume — without dropping a single admitted
// job; invalid target combinations (the configengine feasibility rules,
// e.g. AC-per-task with IR-per-job) are rejected without disturbing the
// running configuration. On the simulation binding a mid-run Reconfigure
// completes when virtual time passes the quiesce window; use
// (*SimSystem).ScheduleReconfig to build strategy schedules at exact
// virtual times, and (*SimSystem).At to drive Submit/AddTasks/RemoveTasks
// at exact virtual times. Stop retires the binding and closes every watch
// stream.
//
// Failures are typed: ErrStopped, ErrUnknownTask and ErrTaskExists are
// discriminated with errors.Is.
type Binding interface {
	Submit(taskID string) (Admission, error)
	SubmitBatch(taskIDs []string) ([]Admission, error)
	AddTasks(tasks []*Task) error
	RemoveTasks(ids []string) error
	Watch(opts WatchOptions) (*Watch, error)
	Snapshot() BindingSnapshot
	Reconfigure(cfg Config) (*ReconfigReport, error)
	Stop() error
}

// Binding surface re-exports.
type (
	// BindingSnapshot is a point-in-time view of a running binding.
	BindingSnapshot = core.BindingSnapshot
	// ReconfigReport describes one completed reconfiguration transaction.
	ReconfigReport = core.ReconfigReport
	// Admission is the typed outcome of one submitted arrival.
	Admission = core.Admission
	// AdmissionOutcome is the resolution state of an Admission.
	AdmissionOutcome = core.AdmissionOutcome
	// Watch is an ordered subscription of lifecycle events.
	Watch = core.WatchStream
	// WatchOptions filters and sizes a watch subscription.
	WatchOptions = core.WatchOptions
	// WatchEvent is one typed lifecycle event.
	WatchEvent = core.WatchEvent
	// WatchKind labels a lifecycle event.
	WatchKind = core.WatchKind
)

// Admission outcomes.
const (
	AdmissionPending  = core.AdmissionPending
	AdmissionAccepted = core.AdmissionAccepted
	AdmissionRejected = core.AdmissionRejected
)

// Watch event kinds.
const (
	WatchAdmitted     = core.WatchAdmitted
	WatchRejected     = core.WatchRejected
	WatchCompleted    = core.WatchCompleted
	WatchDeadlineMiss = core.WatchDeadlineMiss
	WatchTaskAdded    = core.WatchTaskAdded
	WatchTaskRemoved  = core.WatchTaskRemoved
	WatchReconfigured = core.WatchReconfigured
)

// Typed Binding failures, discriminated with errors.Is.
var (
	// ErrStopped marks an operation on a stopped binding.
	ErrStopped = core.ErrStopped
	// ErrUnknownTask marks an operation naming a task the binding does not
	// currently serve.
	ErrUnknownTask = core.ErrUnknownTask
	// ErrTaskExists marks an AddTasks call re-registering a served task ID.
	ErrTaskExists = core.ErrTaskExists
)

// Compile-time proof that both bindings expose the unified surface.
var (
	_ Binding = (*SimSystem)(nil)
	_ Binding = (*Cluster)(nil)
)

// Simulation re-exports: the deterministic virtual-time binding.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = core.SimConfig
	// SimSystem is a configured simulation.
	SimSystem = core.SimSystem
	// Metrics is a run's accounting; its AcceptedUtilizationRatio is the
	// paper's headline metric.
	Metrics = core.Metrics
)

// NewSimBinding builds the simulation binding of the middleware over the
// tasks. Run executes the workload; ScheduleReconfig swaps strategies at a
// virtual time mid-run; At drives open-world operations (Submit, AddTasks,
// RemoveTasks) at exact virtual times.
func NewSimBinding(cfg SimConfig, tasks []*Task) (*SimSystem, error) {
	return core.NewSimSystem(cfg, tasks)
}

// Workload specification re-exports.
type (
	// Workload is the JSON workload specification file model.
	Workload = spec.Workload
	// TaskSpec describes one task in a workload specification.
	TaskSpec = spec.TaskSpec
	// SubtaskSpec describes one stage in a workload specification.
	SubtaskSpec = spec.SubtaskSpec
)

// ParseWorkload decodes and validates a JSON workload specification.
func ParseWorkload(data []byte) (*Workload, error) { return spec.Parse(data) }

// WorkloadFromTasks builds a specification from model tasks.
func WorkloadFromTasks(name string, processors int, tasks []*Task) *Workload {
	return spec.FromTasks(name, processors, tasks)
}

// Random workload generation re-exports (the paper's Section 7 setups).
type WorkloadParams = workload.Params

// Workload parameter constructors for the paper's experiments.
var (
	Figure5Params  = workload.Figure5Params
	Figure6Params  = workload.Figure6Params
	OverheadParams = workload.OverheadParams
)

// GenerateWorkload produces a random task set per the parameters.
func GenerateWorkload(p WorkloadParams) ([]*Task, error) { return workload.Generate(p) }

// ScaleWorkload multiplies every duration in the tasks by factor, keeping
// synthetic utilizations invariant.
func ScaleWorkload(tasks []*Task, factor float64) []*Task { return workload.Scale(tasks, factor) }

// Configuration engine re-exports.
type (
	// Answers are the developer's responses to the four questions of the
	// front-end configuration engine.
	Answers = configengine.Answers
	// Tolerance is the overhead-tolerance answer (N / PT / PJ).
	Tolerance = configengine.Tolerance
	// MappingResult is a strategy selection with its reasoning.
	MappingResult = configengine.Result
	// DeploymentPlan is an XML deployment plan.
	DeploymentPlan = deploy.Plan
	// DeploymentNode declares one node in a plan.
	DeploymentNode = deploy.Node
)

// Overhead tolerance values.
const (
	ToleranceNone    = configengine.ToleranceNone
	TolerancePerTask = configengine.TolerancePerTask
	TolerancePerJob  = configengine.TolerancePerJob
)

// MapAnswers applies Table 1 to select a valid strategy combination.
func MapAnswers(a Answers) MappingResult { return configengine.MapAnswers(a) }

// DefaultAnswers returns the engine's defaults (everything per task).
func DefaultAnswers() Answers { return configengine.DefaultAnswers() }

// GeneratePlan emits the XML deployment plan for a workload under a
// strategy combination.
func GeneratePlan(name string, w *Workload, cfg Config, manager DeploymentNode, apps []DeploymentNode) (*DeploymentPlan, error) {
	return configengine.GeneratePlan(name, w, cfg, manager, apps)
}

// ParsePlan decodes an XML deployment plan.
func ParsePlan(data []byte) (*DeploymentPlan, error) { return deploy.Parse(data) }

// Live cluster re-exports: the real-transport binding.
type (
	// ClusterOptions configures an in-process live deployment.
	ClusterOptions = cluster.Options
	// Cluster is a running live deployment (manager + application nodes on
	// TCP loopback, deployed through the configuration engine and plan
	// launcher).
	Cluster = cluster.Cluster
)

// StartLiveBinding deploys and activates the live cluster binding: manager
// plus application nodes on TCP loopback, deployed through the
// configuration engine, XML plan and plan launcher. The returned Cluster
// implements the unified Binding surface, including live Reconfigure and
// the open-world AddTasks/RemoveTasks deltas.
func StartLiveBinding(opts ClusterOptions) (*Cluster, error) { return cluster.Start(opts) }

// Reconfiguration-delta re-exports: the configuration engine emits minimal
// deltas against a running deployment's plan, and the plan launcher
// executes them (rtmw-config's reconfigure subcommand is the CLI form).
type (
	// ReconfigDeltaPlan is a reconfiguration transaction for a running
	// deployment.
	ReconfigDeltaPlan = deploy.Delta
	// ReconfigOutcome reports an executed reconfiguration transaction.
	ReconfigOutcome = deploy.ReconfigOutcome
)

// ReconfigDelta computes the minimal reconfiguration transaction that moves
// the running deployment described by plan to the target combination.
func ReconfigDelta(plan *DeploymentPlan, to Config) (*ReconfigDeltaPlan, error) {
	return configengine.ReconfigDelta(plan, to)
}

// AddTasksDelta computes the reconfiguration transaction that registers new
// tasks on the running deployment described by plan: the union workload with
// re-assigned EDMS priorities, the added tasks' subtask component installs,
// and the new federation routes, executed under the quiesce protocol.
func AddTasksDelta(plan *DeploymentPlan, add []*Task) (*ReconfigDeltaPlan, error) {
	return configengine.AddTasksDelta(plan, add)
}

// RemoveTasksDelta computes the reconfiguration transaction that withdraws
// tasks from the running deployment described by plan.
func RemoveTasksDelta(plan *DeploymentPlan, ids []string) (*ReconfigDeltaPlan, error) {
	return configengine.RemoveTasksDelta(plan, ids)
}

// Experiment re-exports: regenerate the paper's tables and figures. The
// figure and ablation runners fan their independent (combo, set) / seed
// trials over a bounded worker pool when Workers is set; results are
// bit-identical to a serial run.
type (
	// FigureOptions parameterizes the Figure 5/6 experiments.
	FigureOptions = experiments.FigureOptions
	// ComboResult is one strategy combination's accepted utilization ratio.
	ComboResult = experiments.ComboResult
	// OverheadOptions parameterizes the Figure 7/8 overhead measurement.
	OverheadOptions = experiments.OverheadOptions
	// OverheadReport is the measured overhead accounting.
	OverheadReport = experiments.OverheadReport
	// AblationOptions parameterizes the AUB-vs-deferrable-server ablation.
	AblationOptions = experiments.AblationOptions
	// AblationResult is one admission technique's outcome in the ablation.
	AblationResult = experiments.AblationResult
	// ScaleOptions parameterizes the large-scenario throughput sweep over
	// the pooled simulation core.
	ScaleOptions = experiments.ScaleOptions
	// ScalePoint is one (processors, tasks) configuration of the sweep.
	ScalePoint = experiments.ScalePoint
	// ScaleResult is one scale point's virtual workload and wall-clock
	// throughput.
	ScaleResult = experiments.ScaleResult
	// ReconfigOptions parameterizes the mid-run reconfiguration experiment.
	ReconfigOptions = experiments.ReconfigOptions
	// ReconfigResult is one task set's reconfiguration outcome.
	ReconfigResult = experiments.ReconfigResult
	// ChurnOptions parameterizes the open-world churn sweep (tasks joining
	// and leaving a running binding under every strategy combination).
	ChurnOptions = experiments.ChurnOptions
	// ChurnResult is one churn trial's outcome.
	ChurnResult = experiments.ChurnResult
	// ChurnLiveOptions parameterizes the live churn smoke.
	ChurnLiveOptions = experiments.ChurnLiveOptions
	// ChurnLiveResult is the live churn smoke's outcome.
	ChurnLiveResult = experiments.ChurnLiveResult
)

// Experiment runners and renderers.
var (
	RunFigure5         = experiments.RunFigure5
	RunFigure6         = experiments.RunFigure6
	RunOverhead        = experiments.RunOverhead
	RunAblationAUBvsDS = experiments.RunAblationAUBvsDS
	RunScale           = experiments.RunScale
	RunReconfig        = experiments.RunReconfig
	RunChurn           = experiments.RunChurn
	RunChurnLive       = experiments.RunChurnLive
	RenderChurn        = experiments.RenderChurn
	RenderChurnLive    = experiments.RenderChurnLive
	RenderChurnJSON    = experiments.RenderChurnJSON
	RenderReconfig     = experiments.RenderReconfig
	RenderReconfigJSON = experiments.RenderReconfigJSON
	RenderScale        = experiments.RenderScale
	RenderScaleJSON    = experiments.RenderScaleJSON
	ParseScalePoints   = experiments.ParseScalePoints
	// ScaleWorkloadParams builds the large-scenario workload parameters for
	// one (procs, tasks, set) scale point.
	ScaleWorkloadParams = workload.ScaleParams
	RenderFigure        = experiments.RenderFigure
	RenderCSV           = experiments.RenderCSV
	RenderFigureJSON    = experiments.RenderFigureJSON
	RenderAblation      = experiments.RenderAblation
	RenderAblationJSON  = experiments.RenderAblationJSON
	RenderOverhead      = experiments.RenderOverhead
	RenderTable1        = configengine.RenderTable1
	// ResolveWorkers normalizes a Workers option (values below 1 select one
	// worker per CPU).
	ResolveWorkers = experiments.ResolveWorkers
)

// Scenario engine re-exports: declarative JSON specs composing arrival
// shapes, mid-run injections and expected-invariant blocks, executed
// against either binding from one file, with deterministic record/replay.
type (
	// Scenario is a parsed declarative scenario specification.
	Scenario = scenario.Spec
	// ScenarioWorkloadRef selects the scenario's initial workload (a
	// Figure 5/6 generated set or an inline specification).
	ScenarioWorkloadRef = scenario.WorkloadRef
	// ScenarioArrivalBlock binds an arrival shape to a set of tasks.
	ScenarioArrivalBlock = scenario.ArrivalBlock
	// ScenarioShape is the JSON form of an arrival shape.
	ScenarioShape = scenario.ShapeSpec
	// ScenarioInjection is one mid-run structural operation.
	ScenarioInjection = scenario.Injection
	// ScenarioInvariants is a spec's expected-invariant block.
	ScenarioInvariants = scenario.Invariants
	// ScenarioResult is one binding's execution outcome and verdict.
	ScenarioResult = scenario.Result
	// ScenarioJournal is a decoded record/replay journal.
	ScenarioJournal = scenario.Journal
	// ScenarioReplayResult is a journal replay's outcome with its
	// canonical metrics document.
	ScenarioReplayResult = scenario.ReplayResult
	// ArrivalShape is a time-varying arrival process (flash crowd,
	// diurnal tide, MMPP burst, correlated spike, constant Poisson).
	ArrivalShape = workload.Shape
	// ScenarioOptions parameterizes a scenario run across bindings.
	ScenarioOptions = experiments.ScenarioOptions
	// ScenarioReport is a scenario run's per-binding results.
	ScenarioReport = experiments.ScenarioReport
)

// Typed scenario-spec failures, discriminated with errors.Is. Every
// rejection wraps ErrScenarioSpec.
var (
	ErrScenarioSpec      = scenario.ErrSpec
	ErrUnknownShape      = scenario.ErrUnknownShape
	ErrUnknownInjection  = scenario.ErrUnknownInjection
	ErrMissingInvariants = scenario.ErrMissingInvariants
)

// ParseScenario decodes and validates a JSON scenario specification,
// rejecting unknown fields.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// RunScenario executes a scenario spec against the selected bindings
// (simulation and/or live cluster), optionally recording a journal.
func RunScenario(opts ScenarioOptions) (*ScenarioReport, error) {
	return experiments.RunScenario(opts)
}

// ReadScenarioJournal decodes a recorded scenario journal.
func ReadScenarioJournal(data []byte) (*ScenarioJournal, error) {
	return scenario.DecodeJournal(data)
}

// ReplayScenarioJournal re-executes a journal's op timeline in the
// deterministic simulation binding; replays of the same journal yield
// byte-identical canonical metrics documents.
func ReplayScenarioJournal(j *ScenarioJournal) (*ScenarioReplayResult, error) {
	return scenario.Replay(j)
}

// Autopilot re-exports: the closed-loop controller that tails a binding's
// watch stream, estimates the traffic regime online, and reconfigures the
// running system with flap-free hysteresis.
type (
	// Autopilot is the closed-loop traffic controller.
	Autopilot = autopilot.Autopilot
	// AutopilotOptions parameterizes the controller (window sizes,
	// regime thresholds, policy targets, hysteresis).
	AutopilotOptions = autopilot.Options
	// AutopilotDecision is one journaled controller decision.
	AutopilotDecision = autopilot.Decision
	// AutopilotStats is a snapshot of the controller's counters.
	AutopilotStats = autopilot.Stats
	// AutopilotWindowStats is one decision window's traffic summary.
	AutopilotWindowStats = autopilot.WindowStats
	// AutopilotRegime is the controller's traffic classification.
	AutopilotRegime = autopilot.Regime
	// AutopilotSweepOptions parameterizes the autopilot-vs-static
	// regime-change experiment sweep.
	AutopilotSweepOptions = experiments.AutopilotOptions
	// AutopilotReport is the sweep's per-scenario comparison.
	AutopilotReport = experiments.AutopilotReport
	// AutopilotScenarioReport is one scenario's static-vs-autopilot rows.
	AutopilotScenarioReport = experiments.AutopilotScenarioReport
	// AutopilotRunResult is one strategy's outcome in a sweep scenario.
	AutopilotRunResult = experiments.AutopilotRun
)

// Traffic regimes recognized by the autopilot's classifier.
const (
	RegimeCalm     = autopilot.RegimeCalm
	RegimeBurst    = autopilot.RegimeBurst
	RegimeOverload = autopilot.RegimeOverload
)

// NewAutopilot builds a controller from the given options; attach it to a
// binding with AttachSim (virtual time) or Start (wall clock).
func NewAutopilot(opts AutopilotOptions) (*Autopilot, error) { return autopilot.New(opts) }

// RunAutopilot runs the regime-change scenario sweep: every static strategy
// combination against the closed-loop controller, on the simulation binding
// and optionally the live cluster.
func RunAutopilot(opts AutopilotSweepOptions) (*AutopilotReport, error) {
	return experiments.RunAutopilot(opts)
}

// RenderAutopilot renders the sweep comparison as a text table.
func RenderAutopilot(rep *AutopilotReport) string { return experiments.RenderAutopilot(rep) }

// RenderAutopilotJSON renders the sweep comparison as indented JSON.
func RenderAutopilotJSON(rep *AutopilotReport) (string, error) {
	return experiments.RenderAutopilotJSON(rep)
}

// AutopilotBeatStatics reports whether the closed-loop controller beat every
// static strategy on at least two scenarios with all invariants intact.
func AutopilotBeatStatics(rep *AutopilotReport) bool { return experiments.AutopilotPassed(rep) }

// DefaultLinkDelay is the simulated one-way communication delay, calibrated
// to the paper's measured 322 µs mean on its 100 Mbps testbed.
const DefaultLinkDelay = 322 * time.Microsecond
